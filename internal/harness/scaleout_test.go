package harness

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestScaleOutStudySmall runs a miniature flat sweep end-to-end: two small
// node counts, tiny payloads, no link shaping — enough to check the rows
// are well-formed without turning the unit suite into a benchmark.
func TestScaleOutStudySmall(t *testing.T) {
	var sb strings.Builder
	rows, err := ScaleOutStudy(&sb, ScaleConfig{
		NodeCounts:    []int{4, 8},
		PerRankBytes:  8 << 10,
		BufferSize:    4 << 10,
		PipelineDepth: 2,
		GroupFanIn:    4,
		Rounds:        1,
		Baseline:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.K != r.Nodes/2 || r.M != r.Nodes/2 || r.Groups != 1 {
			t.Errorf("row %d: flat shape k=%d m=%d groups=%d", r.Nodes, r.K, r.M, r.Groups)
		}
		if r.Elapsed <= 0 || r.AggMBps <= 0 || r.Baseline <= 0 || r.Speedup <= 0 {
			t.Errorf("row %d: degenerate measurement %+v", r.Nodes, r)
		}
		if want := int64(r.Nodes) * (8 << 10); r.PayloadBytes != want {
			t.Errorf("row %d: payload %d, want %d", r.Nodes, r.PayloadBytes, want)
		}
	}
	if !strings.Contains(sb.String(), "scaling slope") {
		t.Errorf("table output missing slope line:\n%s", sb.String())
	}
}

// TestScaleOutStudyGroupedSmall runs the grouped scheme at its smallest
// legal size and checks the group accounting.
func TestScaleOutStudyGroupedSmall(t *testing.T) {
	rows, err := ScaleOutStudy(nil, ScaleConfig{
		NodeCounts:    []int{8},
		GroupSize:     4,
		PerRankBytes:  8 << 10,
		BufferSize:    4 << 10,
		PipelineDepth: 2,
		Rounds:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Groups != 2 || r.K != 2 || r.M != 2 {
		t.Fatalf("grouped shape groups=%d k=%d m=%d, want 2/2/2", r.Groups, r.K, r.M)
	}
	if r.StragglerNode < 0 || r.StragglerNode >= r.Nodes {
		t.Fatalf("straggler node %d outside cluster of %d", r.StragglerNode, r.Nodes)
	}
	if r.Baseline != 0 || r.Speedup != 0 {
		t.Fatalf("baseline measured despite Baseline=false: %+v", r)
	}
}

// TestScaleOutStudyRejectsBadCounts checks the sweep's validation errors.
func TestScaleOutStudyRejectsBadCounts(t *testing.T) {
	if _, err := ScaleOutStudy(nil, ScaleConfig{NodeCounts: []int{3}, PerRankBytes: 1 << 10, BufferSize: 1 << 10}); err == nil {
		t.Error("flat sweep accepted 3 nodes")
	}
	if _, err := ScaleOutStudy(nil, ScaleConfig{NodeCounts: []int{10}, GroupSize: 4, PerRankBytes: 1 << 10, BufferSize: 1 << 10}); err == nil {
		t.Error("grouped sweep accepted 10 nodes with group size 4")
	}
	if _, err := ScaleOutStudy(nil, ScaleConfig{NodeCounts: []int{8}, GroupSize: 3, PerRankBytes: 1 << 10, BufferSize: 1 << 10}); err == nil {
		t.Error("grouped sweep accepted odd group size 3")
	}
}

func TestScalingSlope(t *testing.T) {
	// Perfect weak scaling: MB/s doubling with nodes gives slope 1.
	rows := []ScaleRow{
		{Nodes: 4, AggMBps: 40},
		{Nodes: 8, AggMBps: 80},
		{Nodes: 16, AggMBps: 160},
	}
	if got := ScalingSlope(rows); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("slope %v, want 1.0", got)
	}
	// A flat ceiling gives slope 0.
	for i := range rows {
		rows[i].AggMBps = 55
	}
	if got := ScalingSlope(rows); math.Abs(got) > 1e-9 {
		t.Errorf("slope %v, want 0", got)
	}
	// Degenerate inputs (one valid point, invalid rows) fit nothing.
	if got := ScalingSlope(rows[:1]); got != 0 {
		t.Errorf("single-point slope %v, want 0", got)
	}
	if got := ScalingSlope([]ScaleRow{{Nodes: 4}, {Nodes: 0, AggMBps: 5}}); got != 0 {
		t.Errorf("invalid-row slope %v, want 0", got)
	}
}

func TestMedianDuration(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, tc := range []struct {
		laps []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{ms(7)}, ms(7)},
		{[]time.Duration{ms(2), ms(9), ms(4)}, ms(4)},
		{[]time.Duration{ms(2), ms(4), ms(6), ms(100)}, ms(5)},
		// The outlier-rejection property the sweep relies on: one GC-pause
		// lap among five leaves the median untouched.
		{[]time.Duration{ms(10), ms(11), ms(10), ms(500), ms(11)}, ms(11)},
	} {
		if got := medianDuration(tc.laps); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.laps, got, tc.want)
		}
	}
}
