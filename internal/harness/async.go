package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/model"
	"eccheck/internal/parallel"
	"eccheck/internal/transport"
)

// AsyncRow is one model-scale point of the snapshot-and-drain study: how
// long training stalls under the synchronous Save versus SaveAsync, and
// how closely the async blocking time tracks the offload stage (step 1) —
// the paper's claim that ECCheck stalls training only for the DtoH copy.
type AsyncRow struct {
	// Scale is the model build scale (tensor down-scaling divisor).
	Scale int
	// PayloadBytes is the total tensor payload across all ranks.
	PayloadBytes int64
	// Sync is the wall time of a fully synchronous Save round.
	Sync time.Duration
	// Block is the time SaveAsync blocked the caller (snapshot stage).
	Block time.Duration
	// Drain is the background portion of the async round (OverlapNs).
	Drain time.Duration
	// Offload is the snapshot-stage floor: per-node serialize + offload
	// work divided by the effective parallelism (min of GOMAXPROCS and
	// node count). Block cannot beat this floor.
	Offload time.Duration
}

// AsyncStudy measures (on the functional layer, real bytes) the
// snapshot-and-drain split across model scales: the synchronous Save wall
// time, the SaveAsync blocking time, the overlapped drain, and the
// per-node offload floor the blocking time should track.
func AsyncStudy(w io.Writer) ([]AsyncRow, error) {
	var rows []AsyncRow
	for _, scale := range []int{64, 32, 16} {
		row, err := asyncRound(scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if w != nil {
		if err := fprintf(w, "SaveAsync stall vs drain across model scales (functional layer)\n%-6s %12s %12s %12s %12s %12s %8s\n",
			"scale", "payload", "sync save", "async block", "drain", "offload", "stall%"); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := fprintf(w, "1/%-4d %10.1fMB %12v %12v %12v %12v %7.0f%%\n",
				r.Scale, float64(r.PayloadBytes)/1e6,
				r.Sync.Round(time.Microsecond), r.Block.Round(time.Microsecond),
				r.Drain.Round(time.Microsecond), r.Offload.Round(time.Microsecond),
				100*float64(r.Block)/float64(r.Sync)); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// asyncRound runs one warmed-up sync round and one async round at the
// given model scale and returns the measured row.
func asyncRound(scale int) (AsyncRow, error) {
	topo, err := parallel.NewTopology(4, 2, 2, 4)
	if err != nil {
		return AsyncRow{}, err
	}
	net, err := transport.NewMemory(4)
	if err != nil {
		return AsyncRow{}, err
	}
	defer func() { _ = net.Close() }()
	clus, err := cluster.New(4, 2)
	if err != nil {
		return AsyncRow{}, err
	}
	ckpt, err := core.New(core.Config{
		Topo:       topo,
		K:          2,
		M:          2,
		BufferSize: 256 << 10,
	}, net, clus, nil)
	if err != nil {
		return AsyncRow{}, err
	}
	defer ckpt.Close()

	opt := model.NewBuildOptions()
	opt.Scale = scale
	opt.Seed = 77
	dicts, err := model.BuildClusterStateDicts(model.GPT2_345M(), topo, opt)
	if err != nil {
		return AsyncRow{}, err
	}
	var payload int64
	for _, sd := range dicts {
		payload += int64(sd.TensorBytes())
	}
	ctx := context.Background()
	// Warm up buffer pools and mailboxes so both measured rounds see the
	// same steady state.
	if _, err := ckpt.Save(ctx, dicts); err != nil {
		return AsyncRow{}, err
	}

	start := time.Now()
	if _, err := ckpt.Save(ctx, dicts); err != nil {
		return AsyncRow{}, err
	}
	syncElapsed := time.Since(start)

	h, err := ckpt.SaveAsync(ctx, dicts)
	if err != nil {
		return AsyncRow{}, err
	}
	rep, err := h.Wait(ctx)
	if err != nil {
		return AsyncRow{}, err
	}
	offload := snapshotFloor(rep)
	if offload <= 0 {
		return AsyncRow{}, fmt.Errorf("harness: async round recorded no offload phase")
	}
	return AsyncRow{
		Scale:        scale,
		PayloadBytes: payload,
		Sync:         syncElapsed,
		Block:        rep.StallNs,
		Drain:        rep.OverlapNs,
		Offload:      offload,
	}, nil
}

// snapshotFloor returns the snapshot-stage floor for a save report: the
// per-node serialize + offload work divided by the effective parallelism
// (node snapshots run one goroutine per node, so with fewer cores than
// nodes they time-share and the wall-time floor is the aggregate work).
func snapshotFloor(rep *core.SaveReport) time.Duration {
	var sum time.Duration
	for _, phases := range rep.NodePhases {
		sum += phases[core.PhaseSerialize] + phases[core.PhaseOffload]
	}
	par := runtime.GOMAXPROCS(0)
	if n := len(rep.NodePhases); par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return sum / time.Duration(par)
}
