// Package harness regenerates every table and figure of the paper's
// evaluation from the library's functional and timing layers. Each
// experiment returns a structured result (so tests and benchmarks can
// assert the paper's qualitative shape — who wins, by what factor, where
// crossovers fall) and can render itself as the rows/series the paper
// reports.
package harness

import (
	"fmt"
	"io"
	"time"

	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/model"
	"eccheck/internal/parallel"
	"eccheck/internal/testbed"
	"eccheck/internal/transport"
)

// paperTopology returns the evaluation testbed: 4 nodes × 4 GPUs, TP=4
// within nodes, PP=4 across nodes.
func paperTopology() (*parallel.Topology, error) {
	return parallel.NewTopology(4, 4, 4, 4)
}

// newPaperCheckpointer builds an ECCheck engine on the paper topology for
// timing experiments (k = m = 2).
func newPaperCheckpointer(topo *parallel.Topology) (*core.Checkpointer, func(), error) {
	net, err := transport.NewMemory(topo.Nodes())
	if err != nil {
		return nil, nil, err
	}
	clus, err := cluster.New(topo.Nodes(), topo.GPUsPerNode())
	if err != nil {
		_ = net.Close()
		return nil, nil, err
	}
	ckpt, err := core.New(core.Config{Topo: topo, K: 2, M: 2}, net, clus, nil)
	if err != nil {
		_ = net.Close()
		return nil, nil, err
	}
	cleanup := func() {
		ckpt.Close()
		_ = net.Close()
	}
	return ckpt, cleanup, nil
}

// maxShard returns the per-worker shard size of a model on a topology.
func maxShard(cfg model.Config, topo *parallel.Topology) (int64, error) {
	return model.MaxShardBytes(cfg, topo)
}

// seconds renders a duration as seconds with sensible precision.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%8.3fs", d.Seconds())
}

// fprintf wraps fmt.Fprintf, ignoring the byte count.
func fprintf(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}

// Methods enumerates the compared checkpointing systems in the paper's
// presentation order.
var Methods = []string{"base1", "base2", "base3", "eccheck"}

// Resources returns the default hardware model for all experiments.
func Resources() testbed.Resources { return testbed.Paper() }
