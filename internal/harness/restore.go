package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/model"
	"eccheck/internal/obs/flight"
	"eccheck/internal/parallel"
	"eccheck/internal/remotestore"
	"eccheck/internal/statedict"
	"eccheck/internal/transport"
)

// RestoreConfig parameterises the fast-restore study: a skewed MoE
// workload checkpointed on an erasure-coded fleet, then restored three
// ways — full in-memory recovery, lazy partial recovery of just the hot
// ranks, and catastrophic recovery from the remote tier with a serial
// versus pooled fetch comparison.
type RestoreConfig struct {
	// Nodes and GPUsPerNode shape the fleet; K and M the code. The world
	// size (Nodes × GPUsPerNode) must be divisible by K.
	Nodes, GPUsPerNode int
	K, M               int
	// BufferSize is the streaming window size.
	BufferSize int
	// MoE is the sparse workload; zero value selects
	// model.DefaultMoEConfig for the world size.
	MoE model.MoEConfig
	// WithOptimizer includes Adam moments in the workload (heavier
	// shards, more realistic restore volumes).
	WithOptimizer bool
	// RemoteStall is the modeled per-operation latency of the remote
	// tier. The remote store executes transfers in a mutex-serialized
	// instant, so without a stall a serial and a pooled fetch sweep are
	// indistinguishable; the stall is what a worker pool actually
	// overlaps, exactly like real object-store round-trip latency.
	RemoteStall time.Duration
	// Workers is the parallel restore pool width (0 = core default);
	// the serial baseline always runs with 1.
	Workers int
	// Budget is the restore-latency SLO stamped on every recovery report
	// (0 disables budgeting).
	Budget time.Duration
	// Rounds is how many measured repetitions of each timed restore run
	// (median reported; one warm-up always runs first).
	Rounds int
	// FlightEvents sizes the flight-recorder ring observing the restore
	// rounds (0 disables).
	FlightEvents int
}

// DefaultRestoreConfig returns the configuration the committed
// BENCH_7.json snapshot is produced with: a 16-node × 2-GPU fleet under
// an 8+8 code, the default MoE skew (4 hot experts concentrated on the
// first rank), optimizer moments on, and a 500µs remote round-trip.
func DefaultRestoreConfig() RestoreConfig {
	return RestoreConfig{
		Nodes:         16,
		GPUsPerNode:   2,
		K:             8,
		M:             8,
		BufferSize:    64 << 10,
		WithOptimizer: true,
		RemoteStall:   500 * time.Microsecond,
		Budget:        2 * time.Second,
		Rounds:        3,
		FlightEvents:  4096,
	}
}

// RestoreResult is the study's structured outcome.
type RestoreResult struct {
	// Nodes, World, K, M echo the fleet shape.
	Nodes, World, K, M int
	// HotRanks are the ranks hosting hot experts — the partial-restore
	// request set.
	HotRanks []int
	// PayloadBytes is the aggregate tensor payload checkpointed.
	PayloadBytes int64

	// FullElapsed and FullBytes are the median full in-memory Load wall
	// time and the bytes it fetched from host memory.
	FullElapsed time.Duration
	FullBytes   int64
	// FullDeadlineExceeded reports the last full load's budget verdict.
	FullDeadlineExceeded bool

	// PartialElapsed, PartialBytes and PartialWorkflow describe the lazy
	// restore of HotRanks.
	PartialElapsed  time.Duration
	PartialBytes    int64
	PartialWorkflow string

	// RemoteSerial and RemoteParallel are the median catastrophic
	// (LoadFromRemote) restore times with a 1-worker and a pooled fetch
	// sweep; RemoteSpeedup is their ratio.
	RemoteSerial   time.Duration
	RemoteParallel time.Duration
	RemoteSpeedup  float64
	// RemoteWorkers is the pool width the parallel measurement used.
	RemoteWorkers int
}

// restoreRig is one fleet instance of the study.
type restoreRig struct {
	ckpt   *core.Checkpointer
	net    transport.Network
	remote *remotestore.Store
	dicts  []*statedict.StateDict
	close  func()
}

// newRestoreRig builds a fleet with the study's MoE workload loaded and
// one checkpoint committed (and, because RemotePersistEvery is 1,
// persisted to the remote tier).
func newRestoreRig(cfg RestoreConfig, workers int) (*restoreRig, error) {
	topo, err := parallel.NewTopology(cfg.Nodes, cfg.GPUsPerNode, 1, 1)
	if err != nil {
		return nil, err
	}
	net, err := transport.NewMemory(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	clus, err := cluster.New(cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	remote, err := remotestore.New(5e9 / 8)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	var rec *flight.Recorder
	if cfg.FlightEvents > 0 {
		rec = flight.New(cfg.FlightEvents)
	}
	ckpt, err := core.New(core.Config{
		Topo:               topo,
		K:                  cfg.K,
		M:                  cfg.M,
		BufferSize:         cfg.BufferSize,
		RemotePersistEvery: 1,
		RestoreWorkers:     workers,
		LoadBudget:         cfg.Budget,
		Flight:             rec,
	}, net, clus, remote)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	world := topo.World()
	opt := model.NewBuildOptions()
	opt.Seed = 4242
	opt.WithOptimizer = cfg.WithOptimizer
	dicts, err := model.BuildMoEClusterStateDicts(cfg.MoE, world, opt)
	if err != nil {
		ckpt.Close()
		_ = net.Close()
		return nil, err
	}
	if _, err := ckpt.Save(context.Background(), dicts); err != nil {
		ckpt.Close()
		_ = net.Close()
		return nil, err
	}
	// The stall lands after the save persisted, so it prices only the
	// restore-path operations the study times.
	remote.SetStall(cfg.RemoteStall)
	return &restoreRig{
		ckpt:   ckpt,
		net:    net,
		remote: remote,
		dicts:  dicts,
		close: func() {
			ckpt.Close()
			_ = net.Close()
		},
	}, nil
}

// RestoreStudy measures the restore paths on the MoE workload and renders
// a summary table. It also asserts the study's two structural claims —
// the partial restore must fetch strictly fewer bytes than the full one,
// and both restores must reproduce the checkpointed tensors byte-exactly
// — returning an error when either fails, so the smoke gate catches a
// regression in the lazy path, not just a crash.
func RestoreStudy(w io.Writer, cfg RestoreConfig) (*RestoreResult, error) {
	if cfg.Nodes == 0 {
		cfg = DefaultRestoreConfig()
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	world := cfg.Nodes * cfg.GPUsPerNode
	if cfg.MoE.Experts == 0 {
		cfg.MoE = model.DefaultMoEConfig(world)
	}
	if err := cfg.MoE.Validate(world); err != nil {
		return nil, err
	}
	hot := cfg.MoE.HotRanks(world)
	res := &RestoreResult{
		Nodes:    cfg.Nodes,
		World:    world,
		K:        cfg.K,
		M:        cfg.M,
		HotRanks: hot,
	}

	rig, err := newRestoreRig(cfg, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("harness: restore rig: %w", err)
	}
	defer rig.close()
	for _, sd := range rig.dicts {
		res.PayloadBytes += int64(sd.TensorBytes())
	}
	ctx := context.Background()

	// Full in-memory restore: timed over cfg.Rounds, verified byte-exact.
	var fullRep *core.LoadReport
	fullLaps := make([]time.Duration, 0, cfg.Rounds)
	for i := 0; i <= cfg.Rounds; i++ { // one warm-up + measured rounds
		dicts, rep, err := rig.ckpt.Load(ctx)
		if err != nil {
			return nil, fmt.Errorf("harness: full load: %w", err)
		}
		if i == 0 {
			for rank, sd := range dicts {
				if !sd.Equal(rig.dicts[rank]) {
					return nil, fmt.Errorf("harness: full load: rank %d differs from checkpointed state", rank)
				}
			}
			continue
		}
		fullLaps = append(fullLaps, rep.Elapsed)
		fullRep = rep
	}
	res.FullElapsed = medianDuration(fullLaps)
	res.FullBytes = fullRep.BytesFetched
	res.FullDeadlineExceeded = fullRep.DeadlineExceeded

	// Lazy partial restore of the hot ranks only.
	partial, prep, err := rig.ckpt.LoadPartial(ctx, hot)
	if err != nil {
		return nil, fmt.Errorf("harness: partial load: %w", err)
	}
	for _, rank := range hot {
		if !partial[rank].Equal(rig.dicts[rank]) {
			return nil, fmt.Errorf("harness: partial load: rank %d differs from checkpointed state", rank)
		}
	}
	res.PartialElapsed = prep.Elapsed
	res.PartialBytes = prep.BytesFetched
	res.PartialWorkflow = prep.Workflow
	if res.PartialBytes >= res.FullBytes {
		return nil, fmt.Errorf("harness: partial restore fetched %d bytes, full restore %d — lazy path is not lazy",
			res.PartialBytes, res.FullBytes)
	}

	// Catastrophic restore from the remote tier: serial baseline vs the
	// pooled sweep, each on its own rig so the worker bound is honest.
	res.RemoteSerial, err = remoteRestoreMedian(cfg, 1)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = core.DefaultRestoreWorkers
	}
	res.RemoteWorkers = workers
	res.RemoteParallel, err = remoteRestoreMedian(cfg, workers)
	if err != nil {
		return nil, err
	}
	if res.RemoteParallel > 0 {
		res.RemoteSpeedup = float64(res.RemoteSerial) / float64(res.RemoteParallel)
	}

	if w != nil {
		if err := renderRestore(w, cfg, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// remoteRestoreMedian builds a fresh-process fleet (version counter 0,
// populated remote store) and measures LoadFromRemote with the given pool
// width: the catastrophic-failure path, version discovered by catalog
// enumeration.
func remoteRestoreMedian(cfg RestoreConfig, workers int) (time.Duration, error) {
	rig, err := newRestoreRig(cfg, workers)
	if err != nil {
		return 0, fmt.Errorf("harness: remote rig (%d workers): %w", workers, err)
	}
	defer rig.close()
	ctx := context.Background()
	laps := make([]time.Duration, 0, cfg.Rounds)
	for i := 0; i <= cfg.Rounds; i++ {
		start := time.Now()
		dicts, err := rig.ckpt.LoadFromRemote(ctx, 0)
		if err != nil {
			return 0, fmt.Errorf("harness: remote load (%d workers): %w", workers, err)
		}
		if i == 0 {
			for rank, sd := range dicts {
				if !sd.Equal(rig.dicts[rank]) {
					return 0, fmt.Errorf("harness: remote load: rank %d differs from checkpointed state", rank)
				}
			}
			continue
		}
		laps = append(laps, time.Since(start))
	}
	return medianDuration(laps), nil
}

// renderRestore prints the study summary table.
func renderRestore(w io.Writer, cfg RestoreConfig, res *RestoreResult) error {
	if err := fprintf(w, "fast-restore study (%d nodes × %d GPUs, k=%d m=%d, %.1f MB payload, %d hot ranks of %d, remote stall %v)\n",
		res.Nodes, cfg.GPUsPerNode, res.K, res.M, float64(res.PayloadBytes)/1e6,
		len(res.HotRanks), res.World, cfg.RemoteStall); err != nil {
		return err
	}
	if err := fprintf(w, "%-28s %12s %14s %10s\n", "path", "elapsed", "bytes fetched", "workflow"); err != nil {
		return err
	}
	if err := fprintf(w, "%-28s %12v %14d %10s\n", "full in-memory load",
		res.FullElapsed.Round(time.Microsecond), res.FullBytes, "full"); err != nil {
		return err
	}
	if err := fprintf(w, "%-28s %12v %14d %10s\n", "partial load (hot ranks)",
		res.PartialElapsed.Round(time.Microsecond), res.PartialBytes, res.PartialWorkflow); err != nil {
		return err
	}
	if err := fprintf(w, "%-28s %12v %14s %10s\n", "remote restore (serial)",
		res.RemoteSerial.Round(time.Microsecond), "-", "remote"); err != nil {
		return err
	}
	return fprintf(w, "%-28s %12v %14s %10s   %.2fx vs serial\n",
		fmt.Sprintf("remote restore (%d workers)", res.RemoteWorkers),
		res.RemoteParallel.Round(time.Microsecond), "-", "remote", res.RemoteSpeedup)
}
