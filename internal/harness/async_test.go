package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsyncStudyShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := AsyncStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Block <= 0 || r.Drain <= 0 || r.Offload <= 0 {
			t.Errorf("scale 1/%d: non-positive timing %+v", r.Scale, r)
		}
		// The async blocking time cannot cover the whole synchronous round
		// — the drain is real background work. Timing assertions stay loose
		// (half the sync round) so a loaded CI machine doesn't flake.
		if r.Block >= r.Sync/2 {
			t.Errorf("scale 1/%d: async block %v not clearly below sync %v", r.Scale, r.Block, r.Sync)
		}
	}
	// Payload grows as the down-scaling divisor shrinks.
	for i := 1; i < len(rows); i++ {
		if rows[i].PayloadBytes <= rows[i-1].PayloadBytes {
			t.Errorf("payload not growing: %d then %d", rows[i-1].PayloadBytes, rows[i].PayloadBytes)
		}
	}
	if !strings.Contains(buf.String(), "SaveAsync stall") {
		t.Error("rendered output missing header")
	}
}
