package harness

import (
	"io"
	"time"

	"eccheck/internal/baseline"
	"eccheck/internal/core"
	"eccheck/internal/model"
	"eccheck/internal/parallel"
	"eccheck/internal/testbed"
	"eccheck/internal/training"
)

// --- Fig. 10: checkpointing time across models and methods. ---

// Fig10Row is one model's checkpoint latencies per method.
type Fig10Row struct {
	Model string
	// Total checkpoint latency per method name.
	Total map[string]time.Duration
}

// Fig10 compares the checkpoint time of all four methods for the nine
// Table I models on the paper testbed.
func Fig10(w io.Writer) ([]Fig10Row, error) {
	topo, err := paperTopology()
	if err != nil {
		return nil, err
	}
	ckpt, cleanup, err := newPaperCheckpointer(topo)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	res := Resources()
	var rows []Fig10Row
	for _, cfg := range model.TableI() {
		shard, err := maxShard(cfg, topo)
		if err != nil {
			return nil, err
		}
		in := baseline.TimingInput{
			Resources:   res,
			ShardBytes:  shard,
			World:       topo.World(),
			GPUsPerNode: topo.GPUsPerNode(),
		}
		b1, err := baseline.Base1Time(in)
		if err != nil {
			return nil, err
		}
		b2, err := baseline.Base2Time(in)
		if err != nil {
			return nil, err
		}
		b3, err := baseline.Base3Time(in, 2)
		if err != nil {
			return nil, err
		}
		ec, err := ckpt.TimedSave(core.TimedOptions{
			Resources:   res,
			PacketBytes: shard,
			Pipeline:    true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Model: cfg.Name,
			Total: map[string]time.Duration{
				"base1":   b1.Total,
				"base2":   b2.Total,
				"base3":   b3.Total,
				"eccheck": ec.Total,
			},
		})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 10: checkpointing time (4 nodes x 4 GPUs, k=m=2)\n%-12s %10s %10s %10s %10s\n",
			"Model", "base1", "base2", "base3", "eccheck"); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := fprintf(w, "%-12s %s %s %s %s\n", r.Model,
				seconds(r.Total["base1"]), seconds(r.Total["base2"]),
				seconds(r.Total["base3"]), seconds(r.Total["eccheck"])); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// --- Fig. 11: ECCheck time breakdown. ---

// Fig11Row is one model's step breakdown.
type Fig11Row struct {
	Model string
	Step1 time.Duration
	Step2 time.Duration
	Step3 time.Duration
}

// Fig11 breaks ECCheck checkpointing into its three steps for the GPT-2
// sizes.
func Fig11(w io.Writer) ([]Fig11Row, error) {
	topo, err := paperTopology()
	if err != nil {
		return nil, err
	}
	ckpt, cleanup, err := newPaperCheckpointer(topo)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []Fig11Row
	for _, label := range []string{"1.6B", "5.3B", "20B"} {
		cfg, err := model.GPT2Size(label)
		if err != nil {
			return nil, err
		}
		shard, err := maxShard(cfg, topo)
		if err != nil {
			return nil, err
		}
		rep, err := ckpt.TimedSave(core.TimedOptions{
			Resources:   Resources(),
			PacketBytes: shard,
			Pipeline:    true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{Model: cfg.Name, Step1: rep.Step1, Step2: rep.Step2, Step3: rep.Step3})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 11: ECCheck time breakdown\n%-12s %10s %10s %10s\n",
			"Model", "step1", "step2", "step3"); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := fprintf(w, "%-12s %s %s %s\n", r.Model,
				seconds(r.Step1), seconds(r.Step2), seconds(r.Step3)); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// --- Fig. 12: iteration time vs checkpoint frequency. ---

// Fig12Point is one (interval, method) average iteration time.
type Fig12Point struct {
	// IntervalIters is the checkpoint interval in iterations.
	IntervalIters int
	// AvgIteration per method.
	AvgIteration map[string]time.Duration
}

// Fig12 computes the average training iteration time of GPT-2 5.3B at
// several checkpoint frequencies. Synchronous schemes add their full
// latency to one iteration per interval; two-phase schemes add their stall
// and queue when the async phase exceeds the interval; in-memory schemes
// add only their stall (their communication hides in idle slots).
func Fig12(w io.Writer) ([]Fig12Point, error) {
	topo, err := paperTopology()
	if err != nil {
		return nil, err
	}
	ckpt, cleanup, err := newPaperCheckpointer(topo)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	cfg, err := model.GPT2Size("5.3B")
	if err != nil {
		return nil, err
	}
	res := Resources()
	workload, err := training.NewWorkload(cfg, topo, res.NICBandwidth)
	if err != nil {
		return nil, err
	}
	iter, err := workload.IterationTime()
	if err != nil {
		return nil, err
	}
	shard, err := maxShard(cfg, topo)
	if err != nil {
		return nil, err
	}
	in := baseline.TimingInput{
		Resources:   res,
		ShardBytes:  shard,
		World:       topo.World(),
		GPUsPerNode: topo.GPUsPerNode(),
	}
	b1, err := baseline.Base1Time(in)
	if err != nil {
		return nil, err
	}
	b2, err := baseline.Base2Time(in)
	if err != nil {
		return nil, err
	}
	b3, err := baseline.Base3Time(in, 2)
	if err != nil {
		return nil, err
	}
	ec, err := ckpt.TimedSave(core.TimedOptions{Resources: res, PacketBytes: shard, Pipeline: true})
	if err != nil {
		return nil, err
	}

	avg := func(stall, total time.Duration, interval int) time.Duration {
		per := stall / time.Duration(interval)
		// If the asynchronous tail exceeds the interval, the next save
		// must wait: the surplus becomes stall too.
		window := time.Duration(interval) * iter
		if total > window+stall {
			per += (total - window - stall) / time.Duration(interval)
		}
		return iter + per
	}

	var out []Fig12Point
	for _, interval := range []int{100, 50, 20, 10, 5} {
		out = append(out, Fig12Point{
			IntervalIters: interval,
			AvgIteration: map[string]time.Duration{
				"base1":   avg(b1.Stall, b1.Total, interval),
				"base2":   avg(b2.Stall, b2.Total, interval),
				"base3":   avg(b3.Stall, b3.Total, interval),
				"eccheck": avg(ec.Stall, ec.Total, interval),
			},
		})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 12: avg iteration time vs checkpoint interval (GPT-2 5.3B, baseline iter %s)\n%-9s %10s %10s %10s %10s\n",
			seconds(iter), "interval", "base1", "base2", "base3", "eccheck"); err != nil {
			return nil, err
		}
		for _, pt := range out {
			if err := fprintf(w, "%-9d %s %s %s %s\n", pt.IntervalIters,
				seconds(pt.AvgIteration["base1"]), seconds(pt.AvgIteration["base2"]),
				seconds(pt.AvgIteration["base3"]), seconds(pt.AvgIteration["eccheck"])); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// --- Fig. 13: recovery time in the two failure scenarios. ---

// Fig13Row is one model's recovery times per method in one scenario.
type Fig13Row struct {
	Model string
	// Resume per method; a nil entry means the method cannot recover.
	Resume map[string]time.Duration
	// Recoverable marks methods that can recover in this scenario.
	Recoverable map[string]bool
}

// Fig13Result groups both scenarios.
type Fig13Result struct {
	// ScenarioA: parity-node failures only (all data nodes survive).
	ScenarioA []Fig13Row
	// ScenarioB: a data node fails; base3's whole group is lost.
	ScenarioB []Fig13Row
}

// Fig13 models the two recovery scenarios of the paper for the GPT-2
// models.
func Fig13(w io.Writer) (*Fig13Result, error) {
	topo, err := paperTopology()
	if err != nil {
		return nil, err
	}
	ckpt, cleanup, err := newPaperCheckpointer(topo)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	res := Resources()
	plan := ckpt.Plan()
	result := &Fig13Result{}
	for _, label := range []string{"1.6B", "5.3B", "20B"} {
		cfg, err := model.GPT2Size(label)
		if err != nil {
			return nil, err
		}
		shard, err := maxShard(cfg, topo)
		if err != nil {
			return nil, err
		}
		in := baseline.TimingInput{
			Resources:   res,
			ShardBytes:  shard,
			World:       topo.World(),
			GPUsPerNode: topo.GPUsPerNode(),
		}
		remote, err := baseline.Base1RecoverTime(in)
		if err != nil {
			return nil, err
		}
		b3, err := baseline.Base3RecoverTime(in)
		if err != nil {
			return nil, err
		}
		opt := core.TimedOptions{Resources: res, PacketBytes: shard}

		// Scenario A: one parity node fails (all data nodes survive; for
		// base3 the failure is one node per group, recoverable).
		ecA, err := ckpt.TimedRecover(opt, []int{plan.ParityNodes[0]})
		if err != nil {
			return nil, err
		}
		result.ScenarioA = append(result.ScenarioA, Fig13Row{
			Model: cfg.Name,
			Resume: map[string]time.Duration{
				"base1": remote.Resume, "base2": remote.Resume,
				"base3": b3.Resume, "eccheck": ecA.Resume,
			},
			Recoverable: map[string]bool{"base1": true, "base2": true, "base3": true, "eccheck": true},
		})

		// Scenario B: two failures including a data node; base3 loses a
		// whole replication group and cannot recover in memory.
		ecB, err := ckpt.TimedRecover(opt, []int{plan.DataNodes[1], plan.ParityNodes[1]})
		if err != nil {
			return nil, err
		}
		result.ScenarioB = append(result.ScenarioB, Fig13Row{
			Model: cfg.Name,
			Resume: map[string]time.Duration{
				"base1": remote.Resume, "base2": remote.Resume, "eccheck": ecB.Resume,
			},
			Recoverable: map[string]bool{"base1": true, "base2": true, "base3": false, "eccheck": true},
		})
	}
	if w != nil {
		for name, rows := range map[string][]Fig13Row{
			"13a (all data nodes survive)": result.ScenarioA,
			"13b (a data node failed)":     result.ScenarioB,
		} {
			if err := fprintf(w, "Fig. %s\n%-12s %10s %10s %10s %10s\n",
				name, "Model", "base1", "base2", "base3", "eccheck"); err != nil {
				return nil, err
			}
			for _, r := range rows {
				b3cell := "     fail "
				if r.Recoverable["base3"] {
					b3cell = seconds(r.Resume["base3"])
				}
				if err := fprintf(w, "%-12s %s %s %s %s\n", r.Model,
					seconds(r.Resume["base1"]), seconds(r.Resume["base2"]),
					b3cell, seconds(r.Resume["eccheck"])); err != nil {
					return nil, err
				}
			}
		}
	}
	return result, nil
}

// --- Fig. 14: scalability with GPU count. ---

// Fig14Row is one cluster size.
type Fig14Row struct {
	GPUs  int
	Total map[string]time.Duration
}

// Fig14 scales the worker count from 4 to 32 with per-GPU state held
// constant (layers grow with GPUs), n = 4 nodes, k = m = 2, on the V100
// platform.
func Fig14(w io.Writer) ([]Fig14Row, error) {
	res := testbed.V100()
	var rows []Fig14Row
	for _, gpus := range []int{4, 8, 16, 32} {
		perNode := gpus / 4
		topo, err := parallel.NewTopology(4, perNode, perNode, 4)
		if err != nil {
			return nil, err
		}
		ckpt, cleanup, err := newPaperCheckpointer(topo)
		if err != nil {
			return nil, err
		}
		cfg := model.ScalabilityConfig(4 * gpus) // layers scale with GPUs
		shard, err := maxShard(cfg, topo)
		if err != nil {
			cleanup()
			return nil, err
		}
		in := baseline.TimingInput{
			Resources:   res,
			ShardBytes:  shard,
			World:       topo.World(),
			GPUsPerNode: topo.GPUsPerNode(),
		}
		b1, err := baseline.Base1Time(in)
		if err != nil {
			cleanup()
			return nil, err
		}
		b2, err := baseline.Base2Time(in)
		if err != nil {
			cleanup()
			return nil, err
		}
		b3, err := baseline.Base3Time(in, 2)
		if err != nil {
			cleanup()
			return nil, err
		}
		ec, err := ckpt.TimedSave(core.TimedOptions{Resources: res, PacketBytes: shard, Pipeline: true})
		if err != nil {
			cleanup()
			return nil, err
		}
		cleanup()
		rows = append(rows, Fig14Row{
			GPUs: gpus,
			Total: map[string]time.Duration{
				"base1": b1.Total, "base2": b2.Total, "base3": b3.Total, "eccheck": ec.Total,
			},
		})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 14: scalability of checkpointing time\n%-6s %10s %10s %10s %10s\n",
			"GPUs", "base1", "base2", "base3", "eccheck"); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := fprintf(w, "%-6d %s %s %s %s\n", r.GPUs,
				seconds(r.Total["base1"]), seconds(r.Total["base2"]),
				seconds(r.Total["base3"]), seconds(r.Total["eccheck"])); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
