package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableIShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := TableI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	if !strings.Contains(buf.String(), "GPT-2 1.6B") {
		t.Error("rendered table missing GPT-2 1.6B")
	}
	for _, r := range rows {
		if r.Params <= 0 || r.Checkpoint <= r.Params {
			t.Errorf("%s: params %d, checkpoint %d", r.Model, r.Params, r.Checkpoint)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	pts, err := Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.Erasure <= pt.Replication {
			t.Errorf("p=%v: erasure %v <= replication %v", pt.P, pt.Erasure, pt.Replication)
		}
	}
	// Both curves decrease with p.
	for i := 1; i < len(pts); i++ {
		if pts[i].Replication >= pts[i-1].Replication {
			t.Errorf("replication curve not decreasing at p=%v", pts[i].P)
		}
		if pts[i].Erasure >= pts[i-1].Erasure {
			t.Errorf("erasure curve not decreasing at p=%v", pts[i].P)
		}
	}
}

// Fig. 4's claim: the serialization share grows with storage bandwidth and
// becomes a dominant fraction at high bandwidth.
func TestFig4Shape(t *testing.T) {
	pts, err := Fig4(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].SerializationShare <= pts[i-1].SerializationShare {
			t.Errorf("share not increasing at %v Gbps", pts[i].BandwidthGbps)
		}
	}
	last := pts[len(pts)-1]
	if last.SerializationShare < 0.3 {
		t.Errorf("at %v Gbps serialization share %.2f should be substantial",
			last.BandwidthGbps, last.SerializationShare)
	}
}

// Fig. 10's claims: in-memory checkpointing beats remote-storage methods by
// a large factor (paper: up to 5.2x for ECCheck vs remote), and ECCheck
// costs a modest multiple of base3 (paper: ≈1.6x) while tolerating more
// failures.
func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		ec := r.Total["eccheck"].Seconds()
		b1 := r.Total["base1"].Seconds()
		b2 := r.Total["base2"].Seconds()
		b3 := r.Total["base3"].Seconds()
		if ec <= 0 || b1 <= 0 {
			t.Fatalf("%s: degenerate totals %+v", r.Model, r.Total)
		}
		if b1/ec < 3 {
			t.Errorf("%s: eccheck only %.1fx faster than base1 (want >= 3x)", r.Model, b1/ec)
		}
		if b2/ec < 3 {
			t.Errorf("%s: eccheck only %.1fx faster than base2", r.Model, b2/ec)
		}
		ratio := ec / b3
		if ratio < 1.0 || ratio > 3.0 {
			t.Errorf("%s: eccheck/base3 = %.2fx, want within [1, 3] (paper: ≈1.6x)", r.Model, ratio)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		total := r.Step1 + r.Step2 + r.Step3
		if float64(r.Step3)/float64(total) < 0.5 {
			t.Errorf("%s: step 3 is %.0f%% of total, paper shows it dominating",
				r.Model, 100*float64(r.Step3)/float64(total))
		}
		if r.Step2 > r.Step1 {
			t.Errorf("%s: step 2 (%v) should be negligible vs step 1 (%v)", r.Model, r.Step2, r.Step1)
		}
	}
}

// Fig. 12's claims: base1's overhead is severe at any frequency; base2
// degrades as frequency rises (its async phase exceeds the interval);
// base3 and ECCheck stay near the baseline iteration time.
func TestFig12Shape(t *testing.T) {
	pts, err := Fig12(nil)
	if err != nil {
		t.Fatal(err)
	}
	baselineIter := pts[0].AvgIteration["eccheck"] // interval 100 ≈ baseline
	highFreq := pts[len(pts)-1]                    // highest frequency swept
	if highFreq.IntervalIters != 5 {
		t.Fatalf("last point interval = %d", highFreq.IntervalIters)
	}
	if highFreq.AvgIteration["base1"] < 3*baselineIter {
		t.Errorf("base1 at interval 5 (%v) should dwarf the baseline iteration (%v)",
			highFreq.AvgIteration["base1"], baselineIter)
	}
	if highFreq.AvgIteration["base2"] < 2*baselineIter {
		t.Errorf("base2 at interval 5 (%v) should degrade vs baseline (%v)",
			highFreq.AvgIteration["base2"], baselineIter)
	}
	// In-memory methods stay near the baseline even at the highest swept
	// frequency.
	for _, method := range []string{"base3", "eccheck"} {
		if highFreq.AvgIteration[method] > baselineIter+baselineIter/2 {
			t.Errorf("%s at interval 5 = %v, want near baseline %v",
				method, highFreq.AvgIteration[method], baselineIter)
		}
	}
	// Overhead decreases as the interval grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgIteration["base1"] < pts[i-1].AvgIteration["base1"] {
			t.Errorf("base1 overhead should grow with frequency")
		}
	}
}

// Fig. 13's claims: in-memory recovery is up to ≈13.9x faster than remote
// recovery; base3 cannot recover in scenario B while ECCheck can.
func TestFig13Shape(t *testing.T) {
	res, err := Fig13(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.ScenarioA {
		speedup := r.Resume["base1"].Seconds() / r.Resume["eccheck"].Seconds()
		if speedup < 5 {
			t.Errorf("13a %s: eccheck speedup vs base1 = %.1fx, want large", r.Model, speedup)
		}
		if !r.Recoverable["base3"] {
			t.Errorf("13a %s: base3 must be recoverable", r.Model)
		}
	}
	for i, r := range res.ScenarioB {
		if r.Recoverable["base3"] {
			t.Errorf("13b %s: base3 must NOT be recoverable", r.Model)
		}
		if r.Resume["eccheck"] <= res.ScenarioA[i].Resume["eccheck"] {
			t.Errorf("13b %s: decode recovery (%v) should exceed replacement (%v)",
				r.Model, r.Resume["eccheck"], res.ScenarioA[i].Resume["eccheck"])
		}
		speedup := r.Resume["base1"].Seconds() / r.Resume["eccheck"].Seconds()
		if speedup < 3 {
			t.Errorf("13b %s: eccheck speedup vs base1 = %.1fx", r.Model, speedup)
		}
	}
}

// Fig. 14's claims: remote-storage checkpoint time scales linearly with GPU
// count; in-memory methods stay flat.
func TestFig14Shape(t *testing.T) {
	rows, err := Fig14(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]

	// Remote-storage methods degrade with GPU count: the data volume grows
	// while the shared uplink does not.
	for _, method := range []string{"base1", "base2"} {
		growth := last.Total[method].Seconds() / first.Total[method].Seconds()
		if growth < 3 {
			t.Errorf("%s grew only %.1fx over 8x GPUs; should grow with cluster size", method, growth)
		}
	}
	// The in-memory methods' advantage over remote storage must widen with
	// scale (the paper's figure shows them hugging the x-axis while base1
	// and base2 climb).
	for _, method := range []string{"base3", "eccheck"} {
		gapFirst := first.Total["base1"].Seconds() / first.Total[method].Seconds()
		gapLast := last.Total["base1"].Seconds() / last.Total[method].Seconds()
		if gapLast <= gapFirst {
			t.Errorf("%s advantage over base1 shrank with scale: %.1fx -> %.1fx",
				method, gapFirst, gapLast)
		}
		if gapLast < 10 {
			t.Errorf("%s at 32 GPUs only %.1fx faster than base1", method, gapLast)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	pts, err := Fig15(nil)
	if err != nil {
		t.Fatal(err)
	}
	gapAt := map[float64]map[int]float64{}
	for _, pt := range pts {
		if pt.Erasure <= pt.Replication {
			t.Errorf("n=%d p=%v: erasure %v <= replication %v", pt.N, pt.P, pt.Erasure, pt.Replication)
		}
		if gapAt[pt.P] == nil {
			gapAt[pt.P] = map[int]float64{}
		}
		gapAt[pt.P][pt.N] = pt.Erasure - pt.Replication
	}
	// The advantage grows with n at fixed p.
	for p, byN := range gapAt {
		if byN[32] <= byN[4] {
			t.Errorf("p=%v: advantage at n=32 (%v) not larger than at n=4 (%v)", p, byN[32], byN[4])
		}
	}
}

func TestRenderedOutputNonEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Fig10(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig11(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig13(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig14(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig15(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig3(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{"Fig. 10", "Fig. 11", "Fig. 12", "Fig. 14", "Fig. 15", "Fig. 3", "Fig. 4", "fail"} {
		if !strings.Contains(out, marker) {
			t.Errorf("rendered output missing %q", marker)
		}
	}
}
