package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/model"
	"eccheck/internal/obs/flight"
	"eccheck/internal/parallel"
	"eccheck/internal/statedict"
	"eccheck/internal/transport"
)

// ElasticPath is one membership-churn strategy measured end to end: lose
// a data node, repair the slot, recover, and take the next checkpoint.
// Bytes are real transport traffic (every Send observed by the flight
// recorder), split by step so the table shows where each strategy pays.
type ElasticPath struct {
	// Name identifies the strategy ("crash+full" or "drain+delta").
	Name string
	// LeaveBytes is the traffic of the leave itself: zero for a crash,
	// the custody transfer for a drain.
	LeaveBytes int64
	// RepairBytes is the join-side repair traffic: chunk migration after
	// a reseat, or the custody hand-back.
	RepairBytes int64
	// RecoveryBytes is the Load's traffic (erasure rebuild for the crash
	// path, pure redistribution for the drained path).
	RecoveryBytes int64
	// CheckpointBytes is the next save: a full re-encode after the crash,
	// a delta-parity update after the drain.
	CheckpointBytes int64
	// RebuiltChunks counts chunks the Load had to reconstruct.
	RebuiltChunks int
	// Wall is the wall time of the whole sequence.
	Wall time.Duration
}

// TotalBytes is the strategy's end-to-end traffic.
func (p ElasticPath) TotalBytes() int64 {
	return p.LeaveBytes + p.RepairBytes + p.RecoveryBytes + p.CheckpointBytes
}

// ElasticResult compares the two strategies on identical state and churn.
type ElasticResult struct {
	// Full is the crash path: no drain, placement reseat, erasure
	// rebuild, full re-encode of the next checkpoint.
	Full ElasticPath
	// Delta is the elastic path: preemption drain to a custodian, custody
	// restore on rejoin, zero-rebuild recovery, delta-parity checkpoint.
	Delta ElasticPath
	// BytesRatio is Full.TotalBytes / Delta.TotalBytes — how much less
	// data the elastic path moves for small-delta churn.
	BytesRatio float64
}

type elasticRig struct {
	ckpt  *core.Checkpointer
	clus  *cluster.Cluster
	rec   *flight.Recorder
	close func()
}

func newElasticRig() (*elasticRig, error) {
	topo, err := parallel.NewTopology(4, 2, 2, 4)
	if err != nil {
		return nil, err
	}
	base, err := transport.NewMemory(4)
	if err != nil {
		return nil, err
	}
	rec := flight.New(1 << 16)
	net := transport.WithFlight(base, rec)
	clus, err := cluster.New(4, 2)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	ckpt, err := core.New(core.Config{
		Topo:             topo,
		K:                2,
		M:                2,
		BufferSize:       16 << 10,
		IncrementalCache: true,
		Flight:           rec,
	}, net, clus, nil)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	return &elasticRig{
		ckpt: ckpt,
		clus: clus,
		rec:  rec,
		close: func() {
			_ = ckpt.Close()
			_ = net.Close()
		},
	}, nil
}

// sendBytes drains the flight ring and sums the observed Send traffic,
// resetting the counter for the next step.
func (r *elasticRig) sendBytes() int64 {
	var total int64
	for _, ev := range r.rec.Drain() {
		if ev.Type == flight.EvSend {
			total += ev.Bytes
		}
	}
	return total
}

// mutateOneBuffer flips one byte in every worker's first tensor: the
// small-delta churn regime (a handful of optimizer steps between the
// leave and the next checkpoint).
func mutateOneBuffer(dicts []*statedict.StateDict) {
	for rank, sd := range dicts {
		entries := sd.TensorEntries()
		if len(entries) == 0 {
			continue
		}
		entries[0].Tensor.Data()[0] ^= byte(rank + 1)
	}
}

// ElasticStudy measures the elastic-membership claim end to end: when a
// data node leaves and rejoins between checkpoints, a drained leave plus
// delta-parity repair moves a small fraction of the bytes the crash path
// (reseat, erasure rebuild, full re-encode) moves, at matching wall-time
// savings. Both paths run on identical state, identical churn, and the
// same one-buffer-per-worker mutation.
func ElasticStudy(w io.Writer) (*ElasticResult, error) {
	ctx := context.Background()
	opt := model.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 77

	runPath := func(drained bool) (ElasticPath, error) {
		name := "crash+full"
		if drained {
			name = "drain+delta"
		}
		path := ElasticPath{Name: name}
		rig, err := newElasticRig()
		if err != nil {
			return path, err
		}
		defer rig.close()
		topo := rig.ckpt.Plan().Topo
		dicts, err := model.BuildClusterStateDicts(model.GPT2_345M(), topo, opt)
		if err != nil {
			return path, err
		}
		if _, err := rig.ckpt.Save(ctx, dicts); err != nil {
			return path, err
		}
		victim := rig.ckpt.Plan().DataNodes[0]
		rig.sendBytes() // reset: the v1 baseline save is not churn traffic

		started := time.Now()
		if drained {
			if err := rig.clus.BeginDrain(victim); err != nil {
				return path, err
			}
			if _, err := rig.ckpt.DrainNode(ctx, victim); err != nil {
				return path, err
			}
		}
		if err := rig.clus.Fail(victim); err != nil {
			return path, err
		}
		path.LeaveBytes = rig.sendBytes()

		if err := rig.clus.Replace(victim); err != nil {
			return path, err
		}
		if _, err := rig.ckpt.RepairNode(ctx, victim); err != nil {
			return path, err
		}
		path.RepairBytes = rig.sendBytes()

		loaded, lrep, err := rig.ckpt.Load(ctx)
		if err != nil {
			return path, err
		}
		path.RecoveryBytes = rig.sendBytes()
		path.RebuiltChunks = len(lrep.MissingChunks)

		mutateOneBuffer(loaded)
		if drained {
			if _, err := rig.ckpt.SaveIncremental(ctx, loaded); err != nil {
				return path, err
			}
		} else {
			if _, err := rig.ckpt.Save(ctx, loaded); err != nil {
				return path, err
			}
		}
		path.CheckpointBytes = rig.sendBytes()
		path.Wall = time.Since(started)
		return path, nil
	}

	full, err := runPath(false)
	if err != nil {
		return nil, fmt.Errorf("crash path: %w", err)
	}
	delta, err := runPath(true)
	if err != nil {
		return nil, fmt.Errorf("drain path: %w", err)
	}
	res := &ElasticResult{Full: full, Delta: delta}
	if delta.TotalBytes() > 0 {
		res.BytesRatio = float64(full.TotalBytes()) / float64(delta.TotalBytes())
	}

	fmt.Fprintln(w, "Elastic membership: crash recovery vs preemption drain + delta parity")
	fmt.Fprintln(w, "(lose one data node between checkpoints, small-delta churn; bytes = transport sends)")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %8s %10s\n",
		"path", "leave", "repair", "recovery", "ckpt", "total", "rebuilt", "wall")
	for _, p := range []ElasticPath{full, delta} {
		fmt.Fprintf(w, "%-12s %9dK %9dK %9dK %9dK %9dK %8d %10s\n",
			p.Name, p.LeaveBytes>>10, p.RepairBytes>>10, p.RecoveryBytes>>10,
			p.CheckpointBytes>>10, p.TotalBytes()>>10, p.RebuiltChunks,
			p.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "bytes moved: %.1fx less on the elastic path\n", res.BytesRatio)
	return res, nil
}
