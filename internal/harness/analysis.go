package harness

import (
	"io"

	"eccheck/internal/model"
	"eccheck/internal/reliability"
	"eccheck/internal/simnet"
	"eccheck/internal/testbed"
)

// --- Table I: model configurations. ---

// TableIRow is one model configuration with its analytic size.
type TableIRow struct {
	Model      string
	HiddenSize int
	Heads      int
	Layers     int
	Params     int64
	Checkpoint int64
}

// TableI reproduces the model-configuration table with computed parameter
// counts and checkpoint sizes.
func TableI(w io.Writer) ([]TableIRow, error) {
	rows := make([]TableIRow, 0, 9)
	for _, cfg := range model.TableI() {
		rows = append(rows, TableIRow{
			Model:      cfg.Name,
			HiddenSize: cfg.HiddenSize,
			Heads:      cfg.AttentionHeads,
			Layers:     cfg.Layers,
			Params:     cfg.ParamCount(),
			Checkpoint: cfg.CheckpointBytes(),
		})
	}
	if w != nil {
		if err := fprintf(w, "Table I: model configurations\n%-12s %8s %5s %7s %10s %12s\n",
			"Model", "Hidden", "#AH", "#Layers", "Params", "Checkpoint"); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := fprintf(w, "%-12s %8d %5d %7d %9.2fB %10.1fGB\n",
				r.Model, r.HiddenSize, r.Heads, r.Layers,
				float64(r.Params)/1e9, float64(r.Checkpoint)/1e9); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// --- Fig. 3: cluster recovery rate, replication vs erasure coding. ---

// Fig3Point is one x-position of Fig. 3.
type Fig3Point struct {
	P           float64
	Replication float64
	Erasure     float64
}

// Fig3 sweeps the node failure probability for a 2000-node cluster split
// into 500 groups of four.
func Fig3(w io.Writer) ([]Fig3Point, error) {
	const groups = 500
	ps := []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.1}
	out := make([]Fig3Point, 0, len(ps))
	for _, p := range ps {
		rep, err := reliability.ReplicationGroupRate(p)
		if err != nil {
			return nil, err
		}
		era, err := reliability.ErasureGroupRate(p)
		if err != nil {
			return nil, err
		}
		crep, err := reliability.ClusterRate(rep, groups)
		if err != nil {
			return nil, err
		}
		cera, err := reliability.ClusterRate(era, groups)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Point{P: p, Replication: crep, Erasure: cera})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 3: recovery rate in a 2000-node cluster (500 groups of 4)\n%-8s %12s %12s\n",
			"p", "replication", "erasure"); err != nil {
			return nil, err
		}
		for _, pt := range out {
			if err := fprintf(w, "%-8.3f %12.6f %12.6f\n", pt.P, pt.Replication, pt.Erasure); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// --- Fig. 4: serialization share of checkpoint time vs remote bandwidth. ---

// Fig4Point is one bandwidth case.
type Fig4Point struct {
	// BandwidthGbps is the aggregate remote bandwidth.
	BandwidthGbps float64
	// SerializationShare is serialization time / total checkpoint time.
	SerializationShare float64
}

// Fig4 reproduces the motivation experiment: GPT-2 checkpoints written to
// remote storage; as the storage bandwidth grows, the constant
// serialization cost dominates.
func Fig4(w io.Writer) ([]Fig4Point, error) {
	cfg := model.GPT2_345M()
	res := testbed.Paper()
	ckptBytes := cfg.CheckpointBytes()
	ser, err := simnet.DurationForBytes(ckptBytes, res.SerializeRate)
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Point, 0, 4)
	for _, gbps := range []float64{1.25, 2.5, 5, 10, 20, 40} {
		xfer, err := simnet.DurationForBytes(ckptBytes, testbed.Gbps(gbps))
		if err != nil {
			return nil, err
		}
		share := ser.Seconds() / (ser.Seconds() + xfer.Seconds())
		out = append(out, Fig4Point{BandwidthGbps: gbps, SerializationShare: share})
	}
	if w != nil {
		if err := fprintf(w, "Fig. 4: serialization share of checkpointing time (GPT-2 345M, %0.1f GB checkpoint)\n%-10s %20s\n",
			float64(ckptBytes)/1e9, "bandwidth", "serialization share"); err != nil {
			return nil, err
		}
		for _, pt := range out {
			if err := fprintf(w, "%7.2fGb %19.1f%%\n", pt.BandwidthGbps, 100*pt.SerializationShare); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// --- Fig. 15: fault tolerance capacity vs group size at equal redundancy. ---

// Fig15Point is one (n, p) cell.
type Fig15Point struct {
	N           int
	P           float64
	Replication float64
	Erasure     float64
}

// Fig15 compares base3 and ECCheck recovery rates for k = m = n/2 as the
// node count grows.
func Fig15(w io.Writer) ([]Fig15Point, error) {
	var out []Fig15Point
	for _, n := range []int{4, 8, 16, 32, 64} {
		for _, p := range []float64{0.05, 0.1, 0.2} {
			rep, err := reliability.ReplicationRateN(n, p)
			if err != nil {
				return nil, err
			}
			era, err := reliability.ErasureRateN(n, p)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig15Point{N: n, P: p, Replication: rep, Erasure: era})
		}
	}
	if w != nil {
		if err := fprintf(w, "Fig. 15: fault tolerance at equal redundancy (k = m = n/2)\n%-5s %-6s %12s %12s\n",
			"n", "p", "base3", "eccheck"); err != nil {
			return nil, err
		}
		for _, pt := range out {
			if err := fprintf(w, "%-5d %-6.2f %12.6f %12.6f\n", pt.N, pt.P, pt.Replication, pt.Erasure); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
