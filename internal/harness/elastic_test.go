package harness

import (
	"io"
	"testing"
)

// The elastic path must avoid every erasure rebuild and move at least 2x
// fewer bytes than the crash path under small-delta churn — the PR's
// headline acceptance numbers.
func TestElasticStudyShape(t *testing.T) {
	res, err := ElasticStudy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Full.RebuiltChunks == 0 {
		t.Error("crash path rebuilt no chunks; the comparison is vacuous")
	}
	if res.Delta.RebuiltChunks != 0 {
		t.Errorf("elastic path rebuilt %d chunks, want 0", res.Delta.RebuiltChunks)
	}
	if res.Delta.LeaveBytes == 0 {
		t.Error("drain moved no custody bytes")
	}
	if res.BytesRatio < 2 {
		t.Errorf("bytes ratio = %.2f, want >= 2 (full %d vs delta %d)",
			res.BytesRatio, res.Full.TotalBytes(), res.Delta.TotalBytes())
	}
	if res.Full.Wall <= 0 || res.Delta.Wall <= 0 {
		t.Error("wall times not measured")
	}
}
