package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestGroupSizeStudyShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := GroupSizeStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Larger groups strictly improve cluster recovery (more failure
		// patterns survivable for the same total redundancy)...
		if rows[i].ClusterRecoveryRate <= rows[i-1].ClusterRecoveryRate {
			t.Errorf("recovery rate not improving at group size %d: %v <= %v",
				rows[i].GroupSize, rows[i].ClusterRecoveryRate, rows[i-1].ClusterRecoveryRate)
		}
		// ...but move strictly more data per node (m grows with the group).
		if rows[i].PerNodePackets <= rows[i-1].PerNodePackets {
			t.Errorf("per-node packets not growing at group size %d", rows[i].GroupSize)
		}
		// Checkpoint time grows with group size too.
		if rows[i].CheckpointTime < rows[i-1].CheckpointTime {
			t.Errorf("checkpoint time shrank at group size %d", rows[i].GroupSize)
		}
	}
	// The per-node communication is the closed form m = size/2 packets.
	for _, r := range rows {
		if want := float64(r.GroupSize) / 2; r.PerNodePackets != want {
			t.Errorf("size %d: %v packets/node, want %v", r.GroupSize, r.PerNodePackets, want)
		}
	}
	if !strings.Contains(buf.String(), "Group-size study") {
		t.Error("rendered output missing header")
	}
}
