package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"eccheck/internal/transport"
)

func newChaosNet(t *testing.T, nodes int, plan Plan) *Network {
	t.Helper()
	inner, err := transport.NewMemory(nodes)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	n, err := Wrap(inner, plan)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestWrapValidation(t *testing.T) {
	inner, err := transport.NewMemory(2)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	defer inner.Close()

	if _, err := Wrap(nil, Plan{}); err == nil {
		t.Fatal("Wrap(nil) should fail")
	}
	if _, err := Wrap(inner, Plan{DropProb: 1.5}); err == nil {
		t.Fatal("DropProb out of range should fail")
	}
	if _, err := Wrap(inner, Plan{ErrProb: -0.1}); err == nil {
		t.Fatal("negative ErrProb should fail")
	}
	if _, err := Wrap(inner, Plan{Kills: []Kill{{Node: 2}}}); err == nil {
		t.Fatal("kill node out of range should fail")
	}
	if _, err := Wrap(inner, Plan{Kills: []Kill{{Node: 0, AfterSends: -1}}}); err == nil {
		t.Fatal("negative kill threshold should fail")
	}
}

// TestKillAfterExactSends asserts the send-count schedule is exact: the
// node completes precisely AfterSends sends, then the next attempt dies.
func TestKillAfterExactSends(t *testing.T) {
	const after = 5
	n := newChaosNet(t, 2, Plan{Kills: []Kill{{Node: 0, AfterSends: after}}})
	ep0, err := n.Endpoint(0)
	if err != nil {
		t.Fatalf("Endpoint(0): %v", err)
	}
	ep1, err := n.Endpoint(1)
	if err != nil {
		t.Fatalf("Endpoint(1): %v", err)
	}
	ctx := context.Background()

	for i := 0; i < after; i++ {
		if err := ep0.Send(ctx, 1, "t", []byte{byte(i)}); err != nil {
			t.Fatalf("send %d should survive: %v", i, err)
		}
		if _, err := ep1.Recv(ctx, 0, "t"); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if n.Killed(0) {
		t.Fatal("node 0 killed too early")
	}
	err = ep0.Send(ctx, 1, "t", []byte("doomed"))
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("send %d should return ErrKilled, got %v", after, err)
	}
	if !n.Killed(0) {
		t.Fatal("node 0 should be marked killed")
	}
	// Every further operation on the dead node fails the same way.
	if err := ep0.Send(ctx, 1, "t", nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill send: want ErrKilled, got %v", err)
	}
	if _, err := ep0.Recv(ctx, 1, "t"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill recv: want ErrKilled, got %v", err)
	}
	// The survivor is unaffected.
	if err := ep1.Send(ctx, 1, "self", []byte("ok")); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	stats := n.Stats()
	if len(stats.Killed) != 1 || stats.Killed[0] != 0 {
		t.Fatalf("stats.Killed = %v, want [0]", stats.Killed)
	}
}

func TestScheduleKillAtRuntime(t *testing.T) {
	n := newChaosNet(t, 2, Plan{})
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	ctx := context.Background()

	// Burn three sends before arming: the threshold is relative to now.
	for i := 0; i < 3; i++ {
		if err := ep0.Send(ctx, 1, "t", nil); err != nil {
			t.Fatalf("warm-up send: %v", err)
		}
		if _, err := ep1.Recv(ctx, 0, "t"); err != nil {
			t.Fatalf("warm-up recv: %v", err)
		}
	}

	killed := make(chan int, 1)
	n.SetOnKill(func(node int) { killed <- node })
	if err := n.ScheduleKill(0, 2); err != nil {
		t.Fatalf("ScheduleKill: %v", err)
	}
	if err := n.ScheduleKill(9, 0); err == nil {
		t.Fatal("ScheduleKill out of range should fail")
	}

	for i := 0; i < 2; i++ {
		if err := ep0.Send(ctx, 1, "t", nil); err != nil {
			t.Fatalf("send %d after arming should survive: %v", i, err)
		}
		if _, err := ep1.Recv(ctx, 0, "t"); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	if err := ep0.Send(ctx, 1, "t", nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("armed send should die, got %v", err)
	}
	select {
	case node := <-killed:
		if node != 0 {
			t.Fatalf("OnKill fired for node %d, want 0", node)
		}
	case <-time.After(time.Second):
		t.Fatal("OnKill hook never fired")
	}
	// Re-arming a dead node is rejected.
	if err := n.ScheduleKill(0, 1); err == nil {
		t.Fatal("ScheduleKill on a dead node should fail")
	}
}

// TestDropsAndErrorsDeterministic runs the same single-goroutine send
// pattern over two identically seeded networks and asserts identical
// fault decisions, plus sane aggregate counts.
func TestDropsAndErrorsDeterministic(t *testing.T) {
	const sends = 400
	plan := Plan{Seed: 42, DropProb: 0.25, ErrProb: 0.25}

	run := func() (Stats, []byte) {
		n := newChaosNet(t, 2, plan)
		ep0, _ := n.Endpoint(0)
		ctx := context.Background()
		verdicts := make([]byte, sends)
		for i := 0; i < sends; i++ {
			err := ep0.Send(ctx, 1, "t", []byte{1})
			switch {
			case err == nil:
				verdicts[i] = 'd' // delivered or dropped — sender can't tell
			case errors.Is(err, ErrInjected):
				verdicts[i] = 'e'
			default:
				t.Fatalf("send %d: unexpected error %v", i, err)
			}
		}
		return n.Stats(), verdicts
	}

	s1, v1 := run()
	s2, v2 := run()
	if string(v1) != string(v2) {
		t.Fatal("same seed, same pattern: verdict sequences differ")
	}
	if s1.Sends != s2.Sends || s1.Dropped != s2.Dropped || s1.Errored != s2.Errored {
		t.Fatalf("same seed: stats differ: %+v vs %+v", s1, s2)
	}
	if s1.Sends != sends {
		t.Fatalf("Sends = %d, want %d", s1.Sends, sends)
	}
	// With p=0.25 each over 400 trials, 40..160 is a >6-sigma window.
	if s1.Dropped < 40 || s1.Dropped > 160 {
		t.Fatalf("Dropped = %d, implausible for p=0.25 over %d sends", s1.Dropped, sends)
	}
	if s1.Errored < 40 || s1.Errored > 160 {
		t.Fatalf("Errored = %d, implausible for p=0.25 over %d sends", s1.Errored, sends)
	}

	// A different seed should make different decisions.
	plan.Seed = 43
	n := newChaosNet(t, 2, plan)
	ep0, _ := n.Endpoint(0)
	verdicts := make([]byte, sends)
	for i := 0; i < sends; i++ {
		if err := ep0.Send(context.Background(), 1, "t", []byte{1}); errors.Is(err, ErrInjected) {
			verdicts[i] = 'e'
		} else {
			verdicts[i] = 'd'
		}
	}
	if string(verdicts) == string(v1) {
		t.Fatal("different seeds produced identical verdict sequences")
	}
}

// TestDroppedSendNeverArrives asserts a drop is silent for the sender and
// invisible to the receiver.
func TestDroppedSendNeverArrives(t *testing.T) {
	n := newChaosNet(t, 2, Plan{Seed: 7, DropProb: 1})
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	if err := ep0.Send(context.Background(), 1, "t", []byte("ghost")); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ep1.Recv(ctx, 0, "t"); err == nil {
		t.Fatal("receiver got a payload that was supposed to be dropped")
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := newChaosNet(t, 2, Plan{Latency: lat})
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)

	start := time.Now()
	if err := ep0.Send(context.Background(), 1, "t", []byte("slow")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := ep1.Recv(context.Background(), 0, "t"); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("delivery took %v, want >= %v", elapsed, lat)
	}

	// A context that expires inside the injected delay aborts the send.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := ep0.Send(ctx, 1, "t", []byte("late")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("send under expired deadline: want DeadlineExceeded, got %v", err)
	}
}
