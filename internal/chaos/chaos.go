// Package chaos injects transport-level faults into a running deployment:
// link latency and jitter, dropped or erroring sends, and node kills armed
// to fire after a node's Jth send. It wraps any transport.Network, so the
// same checkpoint protocol that runs over channels or TCP can be exercised
// under a reproducible failure model — the property ECRM and Checkmate
// stress: fault tolerance must hold during the checkpoint window, not just
// between quiescent points.
//
// Determinism: all probabilistic decisions draw from one rand.Rand seeded
// by Plan.Seed, so a single-goroutine access pattern replays exactly.
// Kill schedules count sends per node and are exactly reproducible even
// under concurrency (the Jth send dies no matter which goroutine issues
// it).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"eccheck/internal/obs"
	"eccheck/internal/obs/flight"
	"eccheck/internal/transport"
)

// ErrKilled is returned by every Send/Recv of a node the chaos schedule
// has killed. It models the process being gone: the node never observes
// its own failure as anything but an abrupt end of communication.
var ErrKilled = errors.New("chaos: node killed")

// ErrInjected is returned by sends the fault plan decides to fail with an
// explicit error (a reset connection, a NACKed write).
var ErrInjected = errors.New("chaos: injected send error")

// Kill schedules the death of a node: after its AfterSends-th successful
// send, every further Send/Recv on that node returns ErrKilled.
type Kill struct {
	// Node is the victim's index.
	Node int
	// AfterSends is how many sends the node completes before dying.
	// 0 kills the node on its first send attempt.
	AfterSends int
}

// Preemption schedules a spot-style preemption of a node: after its
// AfterSends-th send a notice fires (observable via SetOnNotice and as a
// "notice" flight event), and Notice later the kill lands exactly like a
// scheduled Kill — unless the node surrenders early with KillNow after
// draining its responsibilities. This is the two-minute-warning fault
// model of preemptible cloud capacity.
type Preemption struct {
	// Node is the victim's index.
	Node int
	// AfterSends is how many sends the node completes before the notice
	// fires. 0 fires the notice on the first send attempt.
	AfterSends int
	// Notice is the warning window between notice and kill; it must be
	// positive (a zero-notice preemption is just a Kill).
	Notice time.Duration
}

// Plan describes the faults to inject. The zero value injects nothing.
type Plan struct {
	// Seed seeds the deterministic random source.
	Seed int64
	// Latency is added to every send before delivery.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropProb is the probability a send is silently dropped: the sender
	// sees success, the receiver sees nothing (a lost datagram). Receivers
	// survive drops only if their Recvs carry deadlines.
	DropProb float64
	// ErrProb is the probability a send fails with ErrInjected.
	ErrProb float64
	// Kills are the scheduled node deaths.
	Kills []Kill
	// Preemptions are the scheduled notice-then-kill node deaths.
	Preemptions []Preemption
}

// Stats counts the faults a Network has injected so far.
type Stats struct {
	// Sends is the total send attempts observed (including faulted ones).
	Sends int
	// Dropped is how many sends were silently discarded.
	Dropped int
	// Errored is how many sends failed with ErrInjected.
	Errored int
	// Killed lists the nodes the schedule has killed, in kill order.
	Killed []int
	// Notices is how many preemption notices have fired.
	Notices int
}

// Network wraps a transport.Network and injects the plan's faults into
// every endpoint it hands out. It implements transport.Network.
type Network struct {
	inner transport.Network
	plan  Plan

	mu     sync.Mutex
	rng    *rand.Rand
	sends  []int // per-node successful-send counts
	killAt []int // per-node send threshold; -1 = no kill scheduled
	killed []bool
	stats  Stats
	onKill func(node int)

	// Preemption state: per-node notice send threshold (-1 = none), the
	// warning window, whether the notice has fired, its kill deadline, and
	// the timer that lands the kill when the node does not surrender early.
	preemptAt  []int
	noticeDur  []time.Duration
	noticed    []bool
	deadlines  map[int]time.Time
	killTimers map[int]*time.Timer
	onNotice   func(node int, deadline time.Time)

	// Injected-fault counters by kind; nil (no-op) until SetMetrics.
	mSends   *obs.Counter
	mDropped *obs.Counter
	mErrored *obs.Counter
	mKilled  *obs.Counter
	mReg     *obs.Registry

	// Flight recorder for per-injection events; nil (no-op) until
	// SetFlight.
	rec *flight.Recorder

	// Structured logger for injection verdicts; nil (no-op) until
	// SetLogger.
	log *slog.Logger
}

// Wrap builds a fault-injecting view of inner under the given plan.
func Wrap(inner transport.Network, plan Plan) (*Network, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil inner network")
	}
	if plan.DropProb < 0 || plan.DropProb > 1 || plan.ErrProb < 0 || plan.ErrProb > 1 {
		return nil, fmt.Errorf("chaos: probabilities must be in [0, 1], got drop=%v err=%v",
			plan.DropProb, plan.ErrProb)
	}
	n := &Network{
		inner:      inner,
		plan:       plan,
		rng:        rand.New(rand.NewSource(plan.Seed)),
		sends:      make([]int, inner.Size()),
		killAt:     make([]int, inner.Size()),
		killed:     make([]bool, inner.Size()),
		preemptAt:  make([]int, inner.Size()),
		noticeDur:  make([]time.Duration, inner.Size()),
		noticed:    make([]bool, inner.Size()),
		deadlines:  make(map[int]time.Time),
		killTimers: make(map[int]*time.Timer),
	}
	for i := range n.killAt {
		n.killAt[i] = -1
		n.preemptAt[i] = -1
	}
	for _, k := range plan.Kills {
		if k.Node < 0 || k.Node >= inner.Size() {
			return nil, fmt.Errorf("chaos: kill node %d out of range [0, %d)", k.Node, inner.Size())
		}
		if k.AfterSends < 0 {
			return nil, fmt.Errorf("chaos: negative kill threshold %d", k.AfterSends)
		}
		n.killAt[k.Node] = k.AfterSends
	}
	for _, p := range plan.Preemptions {
		if p.Node < 0 || p.Node >= inner.Size() {
			return nil, fmt.Errorf("chaos: preemption node %d out of range [0, %d)", p.Node, inner.Size())
		}
		if p.AfterSends < 0 {
			return nil, fmt.Errorf("chaos: negative preemption threshold %d", p.AfterSends)
		}
		if p.Notice <= 0 {
			return nil, fmt.Errorf("chaos: preemption notice must be positive, got %v (schedule a Kill for zero notice)", p.Notice)
		}
		n.preemptAt[p.Node] = p.AfterSends
		n.noticeDur[p.Node] = p.Notice
	}
	return n, nil
}

// SetMetrics installs counters recording every injected fault by kind:
// chaos_sends_total (send attempts observed), chaos_dropped_total,
// chaos_errored_total and chaos_killed_total{node}. It implements
// transport.MetricsSetter, so wrapping a chaos network with
// transport.WithMetrics wires these up automatically.
func (n *Network) SetMetrics(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.mSends, n.mDropped, n.mErrored, n.mKilled = nil, nil, nil, nil
		return
	}
	n.mSends = reg.Counter("chaos_sends_total")
	n.mDropped = reg.Counter("chaos_dropped_total")
	n.mErrored = reg.Counter("chaos_errored_total")
	n.mKilled = reg.Counter("chaos_killed_total")
	n.mReg = reg
}

// SetFlight installs a flight recorder that receives one event per
// injected fault (kill, drop, error) with the victim, peer and wire tag
// it hit. It implements transport.FlightSetter, so wrapping a chaos
// network with transport.WithFlight wires this up automatically. A nil
// recorder disables emission.
func (n *Network) SetFlight(rec *flight.Recorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = rec
}

// SetLogger installs a structured logger that records every injection
// verdict (notice, kill, drop, error) with the victim, peer and wire
// tag. A nil logger disables verdict logging.
func (n *Network) SetLogger(l *slog.Logger) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = l
}

// SetOnKill installs a hook fired exactly once per killed node, outside the
// network's locks. Deployments use it to destroy the node's volatile host
// memory at the instant its transport dies, so a kill is a full machine
// crash.
func (n *Network) SetOnKill(fn func(node int)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onKill = fn
}

// ScheduleKill arms a kill at runtime: the node dies after afterSends more
// sends, counted from now. It overwrites any earlier schedule for the node.
func (n *Network) ScheduleKill(node, afterSends int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.killAt) {
		return fmt.Errorf("chaos: kill node %d out of range [0, %d)", node, len(n.killAt))
	}
	if afterSends < 0 {
		return fmt.Errorf("chaos: negative kill threshold %d", afterSends)
	}
	if n.killed[node] {
		return fmt.Errorf("chaos: node %d already killed", node)
	}
	n.killAt[node] = n.sends[node] + afterSends
	return nil
}

// SetOnNotice installs a hook fired once per preemption notice, outside
// the network's locks on the goroutine that triggered it (a sender for
// plan-scheduled preemptions). Deployments use it to start draining the
// doomed node before the deadline. It is not fired for notices the caller
// itself requested via SchedulePreemption.
func (n *Network) SetOnNotice(fn func(node int, deadline time.Time)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onNotice = fn
}

// SchedulePreemption delivers a preemption notice to a node right now and
// arms the kill to land after the notice window, returning the deadline.
// If a notice is already pending for the node (for example a
// plan-scheduled preemption fired first), the existing deadline is
// returned unchanged — the platform sets the deadline, not the caller.
// The caller is the notice's audience, so SetOnNotice is not fired.
func (n *Network) SchedulePreemption(node int, notice time.Duration) (time.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.killed) {
		return time.Time{}, fmt.Errorf("chaos: preemption node %d out of range [0, %d)", node, len(n.killed))
	}
	if n.killed[node] {
		return time.Time{}, fmt.Errorf("chaos: node %d already killed", node)
	}
	if notice <= 0 {
		return time.Time{}, fmt.Errorf("chaos: preemption notice must be positive, got %v", notice)
	}
	if n.noticed[node] {
		return n.deadlines[node], nil
	}
	return n.noticeLocked(node, -1, "schedule", notice), nil
}

// noticeLocked records a fired notice and arms the deadline kill; the
// caller holds n.mu. Returns the kill deadline.
func (n *Network) noticeLocked(node, to int, tag string, notice time.Duration) time.Time {
	n.noticed[node] = true
	n.stats.Notices++
	deadline := time.Now().Add(notice)
	n.deadlines[node] = deadline
	n.rec.Chaos("notice", node, to, tag)
	if n.log != nil {
		n.log.Warn("chaos verdict", "verdict", "notice", "node", node, "peer", to, "tag", tag, "deadline", deadline)
	}
	if t := n.killTimers[node]; t != nil {
		t.Stop()
	}
	n.killTimers[node] = time.AfterFunc(notice, func() { n.killNow(node) })
	return deadline
}

// KillNow kills a node immediately, firing the OnKill hook. A drained
// node surrenders early through this instead of wasting the rest of its
// notice window; it also models a zero-notice preemption. Killing an
// already-dead node is a no-op.
func (n *Network) KillNow(node int) error {
	if node < 0 || node >= n.inner.Size() {
		return fmt.Errorf("chaos: kill node %d out of range [0, %d)", node, n.inner.Size())
	}
	n.killNow(node)
	return nil
}

// killNow marks the node killed (if it is not already), mirroring the
// bookkeeping of a send-threshold kill, and fires the OnKill hook outside
// the lock. It runs on deadline-timer goroutines and from KillNow.
func (n *Network) killNow(node int) {
	n.mu.Lock()
	if node < 0 || node >= len(n.killed) || n.killed[node] {
		n.mu.Unlock()
		return
	}
	hook := n.markKilledLocked(node, -1, "preempt")
	n.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// markKilledLocked flips a node to killed and performs all kill
// bookkeeping (stats, metrics, flight event, timer cleanup); the caller
// holds n.mu. The returned OnKill hook, if any, must be fired after the
// lock is released.
func (n *Network) markKilledLocked(node, to int, tag string) func() {
	n.killed[node] = true
	n.stats.Killed = append(n.stats.Killed, node)
	n.mKilled.Inc()
	if reg := n.mReg; reg != nil {
		reg.Counter("chaos_kills_total", obs.L("node", strconv.Itoa(node))).Inc()
	}
	n.rec.Chaos("kill", node, to, tag)
	if n.log != nil {
		n.log.Warn("chaos verdict", "verdict", "kill", "node", node, "peer", to, "tag", tag)
	}
	if t := n.killTimers[node]; t != nil {
		t.Stop()
		delete(n.killTimers, node)
	}
	delete(n.deadlines, node)
	if fn := n.onKill; fn != nil {
		return func() { fn(node) }
	}
	return nil
}

// Revive clears a node's killed state and any pending kill schedule: the
// failed machine has been swapped for a fresh one, whose transport works
// again. Pair it with cluster.Replace. Reviving a live node is a no-op.
func (n *Network) Revive(node int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.killed) {
		return fmt.Errorf("chaos: revive node %d out of range [0, %d)", node, len(n.killed))
	}
	n.killed[node] = false
	n.killAt[node] = -1
	// Clear any preemption aimed at the old machine: a stale deadline
	// timer or send threshold must never kill the fresh replacement.
	n.preemptAt[node] = -1
	n.noticed[node] = false
	delete(n.deadlines, node)
	if t := n.killTimers[node]; t != nil {
		t.Stop()
		delete(n.killTimers, node)
	}
	return nil
}

// NoticeDeadline returns the pending preemption deadline for a node, or
// false when no notice is outstanding.
func (n *Network) NoticeDeadline(node int) (time.Time, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.deadlines[node]
	return d, ok
}

// Killed reports whether the schedule has killed the node.
func (n *Network) Killed(node int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return node >= 0 && node < len(n.killed) && n.killed[node]
}

// SendCount returns how many send attempts the node has made.
func (n *Network) SendCount(node int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.sends) {
		return 0
	}
	return n.sends[node]
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.Killed = append([]int(nil), n.stats.Killed...)
	return out
}

// Size returns the inner network's node count.
func (n *Network) Size() int { return n.inner.Size() }

// Close stops all pending preemption timers and shuts down the inner
// network.
func (n *Network) Close() error {
	n.mu.Lock()
	for node, t := range n.killTimers {
		t.Stop()
		delete(n.killTimers, node)
	}
	n.mu.Unlock()
	return n.inner.Close()
}

// Endpoint returns node i's fault-injecting endpoint.
func (n *Network) Endpoint(node int) (transport.Endpoint, error) {
	ep, err := n.inner.Endpoint(node)
	if err != nil {
		return nil, err
	}
	return &chaosEndpoint{net: n, ep: ep}, nil
}

// sendVerdict is the fate the plan assigns one send.
type sendVerdict int

const (
	verdictDeliver sendVerdict = iota
	verdictDrop
	verdictError
	verdictKilled
)

// judgeSend advances the node's send counter, applies the kill and
// preemption schedules and rolls the probabilistic faults. to and tag
// identify the send for the flight-recorder event an injected fault
// emits. The returned delay applies only to delivered sends. The hook (a
// kill's OnKill or a notice's OnNotice, if any) is returned for the
// caller to fire outside the lock.
func (n *Network) judgeSend(node, to int, tag string) (verdict sendVerdict, delay time.Duration, hook func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed[node] {
		return verdictKilled, 0, nil
	}
	n.stats.Sends++
	n.sends[node]++
	n.mSends.Inc()
	if at := n.killAt[node]; at >= 0 && n.sends[node] > at {
		hook = n.markKilledLocked(node, to, tag)
		return verdictKilled, 0, hook
	}
	if at := n.preemptAt[node]; at >= 0 && !n.noticed[node] && n.sends[node] > at {
		// The notice fires but the send itself proceeds normally: a node
		// under notice keeps working until the deadline.
		deadline := n.noticeLocked(node, to, tag, n.noticeDur[node])
		if fn := n.onNotice; fn != nil {
			hook = func() { fn(node, deadline) }
		}
	}
	if n.plan.DropProb > 0 && n.rng.Float64() < n.plan.DropProb {
		n.stats.Dropped++
		n.mDropped.Inc()
		n.rec.Chaos("drop", node, to, tag)
		if n.log != nil {
			// Drops and errors can be frequent under aggressive plans:
			// debug level keeps the default stream readable.
			n.log.Debug("chaos verdict", "verdict", "drop", "node", node, "peer", to, "tag", tag)
		}
		return verdictDrop, 0, hook
	}
	if n.plan.ErrProb > 0 && n.rng.Float64() < n.plan.ErrProb {
		n.stats.Errored++
		n.mErrored.Inc()
		n.rec.Chaos("error", node, to, tag)
		if n.log != nil {
			n.log.Debug("chaos verdict", "verdict", "error", "node", node, "peer", to, "tag", tag)
		}
		return verdictError, 0, hook
	}
	delay = n.plan.Latency
	if n.plan.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.plan.Jitter)))
	}
	return verdictDeliver, delay, hook
}

type chaosEndpoint struct {
	net *Network
	ep  transport.Endpoint
}

func (e *chaosEndpoint) Rank() int { return e.ep.Rank() }

func (e *chaosEndpoint) Send(ctx context.Context, to int, tag string, payload []byte) error {
	verdict, delay, hook := e.net.judgeSend(e.ep.Rank(), to, tag)
	if hook != nil {
		hook()
	}
	switch verdict {
	case verdictKilled:
		return fmt.Errorf("chaos: node %d send to %d tag %q: %w", e.ep.Rank(), to, tag, ErrKilled)
	case verdictDrop:
		return nil // the sender believes it succeeded
	case verdictError:
		return fmt.Errorf("chaos: node %d send to %d tag %q: %w", e.ep.Rank(), to, tag, ErrInjected)
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return fmt.Errorf("chaos: send to %d tag %q: %w", to, tag, ctx.Err())
		}
	}
	return e.ep.Send(ctx, to, tag, payload)
}

func (e *chaosEndpoint) Recv(ctx context.Context, from int, tag string) ([]byte, error) {
	if e.net.Killed(e.ep.Rank()) {
		return nil, fmt.Errorf("chaos: node %d recv from %d tag %q: %w", e.ep.Rank(), from, tag, ErrKilled)
	}
	return e.ep.Recv(ctx, from, tag)
}

func (e *chaosEndpoint) Close() error { return e.ep.Close() }

var (
	_ transport.Network      = (*Network)(nil)
	_ transport.Endpoint     = (*chaosEndpoint)(nil)
	_ transport.FlightSetter = (*Network)(nil)
)
