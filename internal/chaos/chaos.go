// Package chaos injects transport-level faults into a running deployment:
// link latency and jitter, dropped or erroring sends, and node kills armed
// to fire after a node's Jth send. It wraps any transport.Network, so the
// same checkpoint protocol that runs over channels or TCP can be exercised
// under a reproducible failure model — the property ECRM and Checkmate
// stress: fault tolerance must hold during the checkpoint window, not just
// between quiescent points.
//
// Determinism: all probabilistic decisions draw from one rand.Rand seeded
// by Plan.Seed, so a single-goroutine access pattern replays exactly.
// Kill schedules count sends per node and are exactly reproducible even
// under concurrency (the Jth send dies no matter which goroutine issues
// it).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"eccheck/internal/obs"
	"eccheck/internal/obs/flight"
	"eccheck/internal/transport"
)

// ErrKilled is returned by every Send/Recv of a node the chaos schedule
// has killed. It models the process being gone: the node never observes
// its own failure as anything but an abrupt end of communication.
var ErrKilled = errors.New("chaos: node killed")

// ErrInjected is returned by sends the fault plan decides to fail with an
// explicit error (a reset connection, a NACKed write).
var ErrInjected = errors.New("chaos: injected send error")

// Kill schedules the death of a node: after its AfterSends-th successful
// send, every further Send/Recv on that node returns ErrKilled.
type Kill struct {
	// Node is the victim's index.
	Node int
	// AfterSends is how many sends the node completes before dying.
	// 0 kills the node on its first send attempt.
	AfterSends int
}

// Plan describes the faults to inject. The zero value injects nothing.
type Plan struct {
	// Seed seeds the deterministic random source.
	Seed int64
	// Latency is added to every send before delivery.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropProb is the probability a send is silently dropped: the sender
	// sees success, the receiver sees nothing (a lost datagram). Receivers
	// survive drops only if their Recvs carry deadlines.
	DropProb float64
	// ErrProb is the probability a send fails with ErrInjected.
	ErrProb float64
	// Kills are the scheduled node deaths.
	Kills []Kill
}

// Stats counts the faults a Network has injected so far.
type Stats struct {
	// Sends is the total send attempts observed (including faulted ones).
	Sends int
	// Dropped is how many sends were silently discarded.
	Dropped int
	// Errored is how many sends failed with ErrInjected.
	Errored int
	// Killed lists the nodes the schedule has killed, in kill order.
	Killed []int
}

// Network wraps a transport.Network and injects the plan's faults into
// every endpoint it hands out. It implements transport.Network.
type Network struct {
	inner transport.Network
	plan  Plan

	mu     sync.Mutex
	rng    *rand.Rand
	sends  []int // per-node successful-send counts
	killAt []int // per-node send threshold; -1 = no kill scheduled
	killed []bool
	stats  Stats
	onKill func(node int)

	// Injected-fault counters by kind; nil (no-op) until SetMetrics.
	mSends   *obs.Counter
	mDropped *obs.Counter
	mErrored *obs.Counter
	mKilled  *obs.Counter
	mReg     *obs.Registry

	// Flight recorder for per-injection events; nil (no-op) until
	// SetFlight.
	rec *flight.Recorder
}

// Wrap builds a fault-injecting view of inner under the given plan.
func Wrap(inner transport.Network, plan Plan) (*Network, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil inner network")
	}
	if plan.DropProb < 0 || plan.DropProb > 1 || plan.ErrProb < 0 || plan.ErrProb > 1 {
		return nil, fmt.Errorf("chaos: probabilities must be in [0, 1], got drop=%v err=%v",
			plan.DropProb, plan.ErrProb)
	}
	n := &Network{
		inner:  inner,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		sends:  make([]int, inner.Size()),
		killAt: make([]int, inner.Size()),
		killed: make([]bool, inner.Size()),
	}
	for i := range n.killAt {
		n.killAt[i] = -1
	}
	for _, k := range plan.Kills {
		if k.Node < 0 || k.Node >= inner.Size() {
			return nil, fmt.Errorf("chaos: kill node %d out of range [0, %d)", k.Node, inner.Size())
		}
		if k.AfterSends < 0 {
			return nil, fmt.Errorf("chaos: negative kill threshold %d", k.AfterSends)
		}
		n.killAt[k.Node] = k.AfterSends
	}
	return n, nil
}

// SetMetrics installs counters recording every injected fault by kind:
// chaos_sends_total (send attempts observed), chaos_dropped_total,
// chaos_errored_total and chaos_killed_total{node}. It implements
// transport.MetricsSetter, so wrapping a chaos network with
// transport.WithMetrics wires these up automatically.
func (n *Network) SetMetrics(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.mSends, n.mDropped, n.mErrored, n.mKilled = nil, nil, nil, nil
		return
	}
	n.mSends = reg.Counter("chaos_sends_total")
	n.mDropped = reg.Counter("chaos_dropped_total")
	n.mErrored = reg.Counter("chaos_errored_total")
	n.mKilled = reg.Counter("chaos_killed_total")
	n.mReg = reg
}

// SetFlight installs a flight recorder that receives one event per
// injected fault (kill, drop, error) with the victim, peer and wire tag
// it hit. It implements transport.FlightSetter, so wrapping a chaos
// network with transport.WithFlight wires this up automatically. A nil
// recorder disables emission.
func (n *Network) SetFlight(rec *flight.Recorder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = rec
}

// SetOnKill installs a hook fired exactly once per killed node, outside the
// network's locks. Deployments use it to destroy the node's volatile host
// memory at the instant its transport dies, so a kill is a full machine
// crash.
func (n *Network) SetOnKill(fn func(node int)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onKill = fn
}

// ScheduleKill arms a kill at runtime: the node dies after afterSends more
// sends, counted from now. It overwrites any earlier schedule for the node.
func (n *Network) ScheduleKill(node, afterSends int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.killAt) {
		return fmt.Errorf("chaos: kill node %d out of range [0, %d)", node, len(n.killAt))
	}
	if afterSends < 0 {
		return fmt.Errorf("chaos: negative kill threshold %d", afterSends)
	}
	if n.killed[node] {
		return fmt.Errorf("chaos: node %d already killed", node)
	}
	n.killAt[node] = n.sends[node] + afterSends
	return nil
}

// Revive clears a node's killed state and any pending kill schedule: the
// failed machine has been swapped for a fresh one, whose transport works
// again. Pair it with cluster.Replace. Reviving a live node is a no-op.
func (n *Network) Revive(node int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.killed) {
		return fmt.Errorf("chaos: revive node %d out of range [0, %d)", node, len(n.killed))
	}
	n.killed[node] = false
	n.killAt[node] = -1
	return nil
}

// Killed reports whether the schedule has killed the node.
func (n *Network) Killed(node int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return node >= 0 && node < len(n.killed) && n.killed[node]
}

// SendCount returns how many send attempts the node has made.
func (n *Network) SendCount(node int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node < 0 || node >= len(n.sends) {
		return 0
	}
	return n.sends[node]
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.Killed = append([]int(nil), n.stats.Killed...)
	return out
}

// Size returns the inner network's node count.
func (n *Network) Size() int { return n.inner.Size() }

// Close shuts down the inner network.
func (n *Network) Close() error { return n.inner.Close() }

// Endpoint returns node i's fault-injecting endpoint.
func (n *Network) Endpoint(node int) (transport.Endpoint, error) {
	ep, err := n.inner.Endpoint(node)
	if err != nil {
		return nil, err
	}
	return &chaosEndpoint{net: n, ep: ep}, nil
}

// sendVerdict is the fate the plan assigns one send.
type sendVerdict int

const (
	verdictDeliver sendVerdict = iota
	verdictDrop
	verdictError
	verdictKilled
)

// judgeSend advances the node's send counter, applies the kill schedule and
// rolls the probabilistic faults. to and tag identify the send for the
// flight-recorder event an injected fault emits. The returned delay
// applies only to delivered sends. The kill hook (if any) is returned
// for the caller to fire outside the lock.
func (n *Network) judgeSend(node, to int, tag string) (verdict sendVerdict, delay time.Duration, killHook func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed[node] {
		return verdictKilled, 0, nil
	}
	n.stats.Sends++
	n.sends[node]++
	n.mSends.Inc()
	if at := n.killAt[node]; at >= 0 && n.sends[node] > at {
		n.killed[node] = true
		n.stats.Killed = append(n.stats.Killed, node)
		n.mKilled.Inc()
		if reg := n.mReg; reg != nil {
			reg.Counter("chaos_kills_total", obs.L("node", strconv.Itoa(node))).Inc()
		}
		n.rec.Chaos("kill", node, to, tag)
		if fn := n.onKill; fn != nil {
			killHook = func() { fn(node) }
		}
		return verdictKilled, 0, killHook
	}
	if n.plan.DropProb > 0 && n.rng.Float64() < n.plan.DropProb {
		n.stats.Dropped++
		n.mDropped.Inc()
		n.rec.Chaos("drop", node, to, tag)
		return verdictDrop, 0, nil
	}
	if n.plan.ErrProb > 0 && n.rng.Float64() < n.plan.ErrProb {
		n.stats.Errored++
		n.mErrored.Inc()
		n.rec.Chaos("error", node, to, tag)
		return verdictError, 0, nil
	}
	delay = n.plan.Latency
	if n.plan.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.plan.Jitter)))
	}
	return verdictDeliver, delay, nil
}

type chaosEndpoint struct {
	net *Network
	ep  transport.Endpoint
}

func (e *chaosEndpoint) Rank() int { return e.ep.Rank() }

func (e *chaosEndpoint) Send(ctx context.Context, to int, tag string, payload []byte) error {
	verdict, delay, killHook := e.net.judgeSend(e.ep.Rank(), to, tag)
	if killHook != nil {
		killHook()
	}
	switch verdict {
	case verdictKilled:
		return fmt.Errorf("chaos: node %d send to %d tag %q: %w", e.ep.Rank(), to, tag, ErrKilled)
	case verdictDrop:
		return nil // the sender believes it succeeded
	case verdictError:
		return fmt.Errorf("chaos: node %d send to %d tag %q: %w", e.ep.Rank(), to, tag, ErrInjected)
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return fmt.Errorf("chaos: send to %d tag %q: %w", to, tag, ctx.Err())
		}
	}
	return e.ep.Send(ctx, to, tag, payload)
}

func (e *chaosEndpoint) Recv(ctx context.Context, from int, tag string) ([]byte, error) {
	if e.net.Killed(e.ep.Rank()) {
		return nil, fmt.Errorf("chaos: node %d recv from %d tag %q: %w", e.ep.Rank(), from, tag, ErrKilled)
	}
	return e.ep.Recv(ctx, from, tag)
}

func (e *chaosEndpoint) Close() error { return e.ep.Close() }

var (
	_ transport.Network      = (*Network)(nil)
	_ transport.Endpoint     = (*chaosEndpoint)(nil)
	_ transport.FlightSetter = (*Network)(nil)
)
