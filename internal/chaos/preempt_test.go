package chaos

import (
	"context"
	"testing"
	"time"

	"eccheck/internal/transport"
)

func TestPreemptionPlanValidation(t *testing.T) {
	inner, err := transport.NewMemory(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := Wrap(inner, Plan{Preemptions: []Preemption{{Node: 2, Notice: time.Second}}}); err == nil {
		t.Error("preemption node out of range: want error")
	}
	if _, err := Wrap(inner, Plan{Preemptions: []Preemption{{Node: 0, AfterSends: -1, Notice: time.Second}}}); err == nil {
		t.Error("negative AfterSends: want error")
	}
	if _, err := Wrap(inner, Plan{Preemptions: []Preemption{{Node: 0}}}); err == nil {
		t.Error("zero notice: want error (schedule a Kill instead)")
	}
}

// A planned preemption: the notice fires after exactly AfterSends sends
// (the send itself still succeeds — a warning is not a fault), the
// callback sees the deadline, and the kill lands only when it expires.
func TestPlannedPreemptionNoticeThenKill(t *testing.T) {
	const after = 3
	notice := 80 * time.Millisecond
	n := newChaosNet(t, 2, Plan{Preemptions: []Preemption{{Node: 0, AfterSends: after, Notice: notice}}})

	type fired struct {
		node     int
		deadline time.Time
	}
	noticeCh := make(chan fired, 1)
	n.SetOnNotice(func(node int, deadline time.Time) {
		noticeCh <- fired{node, deadline}
	})

	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	ctx := context.Background()
	for i := 0; i <= after; i++ {
		if err := ep0.Send(ctx, 1, "t", []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v (a notice must not fail the send)", i, err)
		}
		if _, err := ep1.Recv(ctx, 0, "t"); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if i < after {
			select {
			case f := <-noticeCh:
				t.Fatalf("notice fired early at send %d: %+v", i, f)
			default:
			}
		}
	}
	var f fired
	select {
	case f = <-noticeCh:
	case <-time.After(time.Second):
		t.Fatal("notice callback never fired")
	}
	if f.node != 0 {
		t.Fatalf("notice for node %d, want 0", f.node)
	}
	if until := time.Until(f.deadline); until <= 0 || until > notice {
		t.Fatalf("deadline %v out of the notice window", until)
	}
	if d, ok := n.NoticeDeadline(0); !ok || !d.Equal(f.deadline) {
		t.Fatalf("NoticeDeadline = (%v, %v), want (%v, true)", d, ok, f.deadline)
	}
	if n.Killed(0) {
		t.Fatal("node killed before its deadline")
	}
	// The deadline lands.
	deadline := time.Now().Add(2 * time.Second)
	for !n.Killed(0) {
		if time.Now().After(deadline) {
			t.Fatal("node 0 never killed after notice expiry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := n.Stats()
	if stats.Notices != 1 {
		t.Fatalf("Stats.Notices = %d, want 1", stats.Notices)
	}
	if len(stats.Killed) != 1 || stats.Killed[0] != 0 {
		t.Fatalf("Stats.Killed = %v, want [0]", stats.Killed)
	}
}

func TestSchedulePreemptionRuntime(t *testing.T) {
	n := newChaosNet(t, 2, Plan{})
	if _, err := n.SchedulePreemption(5, time.Second); err == nil {
		t.Error("out-of-range node: want error")
	}
	if _, err := n.SchedulePreemption(0, 0); err == nil {
		t.Error("zero notice: want error")
	}
	d1, err := n.SchedulePreemption(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Re-scheduling an already-noticed node returns the EXISTING deadline:
	// the platform set it, callers cannot move it.
	d2, err := n.SchedulePreemption(0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Fatalf("second schedule moved the deadline: %v vs %v", d1, d2)
	}
	if n.Stats().Notices != 1 {
		t.Fatalf("Notices = %d, want 1 (re-schedule is not a new notice)", n.Stats().Notices)
	}
	// KillNow surrenders early, before the deadline.
	if err := n.KillNow(0); err != nil {
		t.Fatalf("KillNow: %v", err)
	}
	if !n.Killed(0) {
		t.Fatal("KillNow did not kill")
	}
	if err := n.KillNow(0); err != nil {
		t.Fatalf("KillNow must be idempotent, got %v", err)
	}
	if _, err := n.SchedulePreemption(0, time.Second); err == nil {
		t.Error("scheduling a dead node: want error")
	}
}

// Revive must disarm the pending deadline: a replacement machine in the
// same slot must not be killed by the old machine's preemption timer.
func TestReviveDisarmsPendingDeadline(t *testing.T) {
	n := newChaosNet(t, 2, Plan{})
	notice := 60 * time.Millisecond
	if _, err := n.SchedulePreemption(0, notice); err != nil {
		t.Fatal(err)
	}
	if err := n.Revive(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.NoticeDeadline(0); ok {
		t.Fatal("revived node still has a notice deadline")
	}
	time.Sleep(notice + 50*time.Millisecond)
	if n.Killed(0) {
		t.Fatal("stale preemption timer killed the replacement")
	}
	// The slot can be preempted again from scratch.
	if _, err := n.SchedulePreemption(0, time.Hour); err != nil {
		t.Fatalf("re-preempting a revived slot: %v", err)
	}
	if n.Stats().Notices != 2 {
		t.Fatalf("Notices = %d, want 2", n.Stats().Notices)
	}
}
