package training

import (
	"fmt"
	"time"

	"eccheck/internal/simnet"
)

// ProfileIterations is how many leading iterations the online profiler
// observes, as in the paper.
const ProfileIterations = 50

// IdleProfile is what the online profiler learns: the iteration period and
// the idle windows within one iteration, which repeat for the rest of
// training.
type IdleProfile struct {
	// Period is the measured iteration time.
	Period time.Duration
	// Windows are the idle spans within one period, relative to its start.
	Windows []simnet.Span
	// IdleFraction is the share of the period that is idle.
	IdleFraction float64
}

// ProfileIdleSlots observes the first ProfileIterations iterations of the
// timeline and extracts the recurring idle windows. The timeline must cover
// at least that horizon.
func ProfileIdleSlots(tl *simnet.Timeline, period time.Duration) (*IdleProfile, error) {
	if period <= 0 {
		return nil, fmt.Errorf("training: non-positive iteration period %v", period)
	}
	horizon := time.Duration(ProfileIterations) * period
	// Accumulate idle time per within-period offset by intersecting every
	// observed iteration; windows present in all iterations are the
	// predictable slots. Because our traffic is strictly periodic, the
	// windows of the first iteration suffice, but the profiler still
	// verifies them across the horizon so aperiodic traffic would shrink
	// the profile rather than corrupt it.
	first := tl.IdleWindows(0, period)
	stable := make([]simnet.Span, 0, len(first))
	for _, win := range first {
		ok := true
		for i := 1; i < ProfileIterations; i++ {
			base := time.Duration(i) * period
			if base+win.End > horizon {
				break
			}
			if tl.BusyAt(base+win.Start) || tl.BusyAt(base+win.End-time.Nanosecond) {
				ok = false
				break
			}
		}
		if ok {
			stable = append(stable, win)
		}
	}
	var idle time.Duration
	for _, w := range stable {
		idle += w.Len()
	}
	return &IdleProfile{
		Period:       period,
		Windows:      stable,
		IdleFraction: float64(idle) / float64(period),
	}, nil
}

// ExtendTimeline materialises the profiled busy pattern out to the given
// horizon so checkpoint transfers longer than the profiling window can be
// scheduled. It returns a fresh timeline whose busy spans are the
// complement of the profile's idle windows, repeated each period.
func (p *IdleProfile) ExtendTimeline(horizon time.Duration) (*simnet.Timeline, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("training: non-positive horizon %v", horizon)
	}
	var tl simnet.Timeline
	periods := int(horizon/p.Period) + 1
	for i := 0; i < periods; i++ {
		base := time.Duration(i) * p.Period
		cursor := base
		for _, w := range p.Windows {
			if base+w.Start > cursor {
				if err := tl.AddBusy(cursor, base+w.Start); err != nil {
					return nil, err
				}
			}
			cursor = base + w.End
		}
		if cursor < base+p.Period {
			if err := tl.AddBusy(cursor, base+p.Period); err != nil {
				return nil, err
			}
		}
	}
	return &tl, nil
}
