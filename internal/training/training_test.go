package training

import (
	"testing"
	"time"

	"eccheck/internal/model"
	"eccheck/internal/parallel"
)

const gbps100 = 100e9 / 8 // 100 Gbps in bytes/second

func paperWorkload(t *testing.T, label string) *Workload {
	t.Helper()
	topo, err := parallel.NewTopology(4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.GPT2Size(label)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(cfg, topo, gbps100)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadValidation(t *testing.T) {
	topo, err := parallel.NewTopology(4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.GPT2Size("1.6B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkload(cfg, topo, 0); err == nil {
		t.Error("zero bandwidth: want error")
	}
	bad := cfg
	bad.Layers = 0
	if _, err := NewWorkload(bad, topo, gbps100); err == nil {
		t.Error("invalid model: want error")
	}
}

func TestIterationTimePlausibleAndMonotone(t *testing.T) {
	small := paperWorkload(t, "1.6B")
	large := paperWorkload(t, "20B")
	ts, err := small.IterationTime()
	if err != nil {
		t.Fatal(err)
	}
	tl, err := large.IterationTime()
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || tl <= 0 {
		t.Fatalf("non-positive iteration times %v, %v", ts, tl)
	}
	if tl <= ts {
		t.Errorf("20B iteration (%v) not slower than 1.6B (%v)", tl, ts)
	}
	// Sanity: large-model iterations on 16 GPUs are seconds, not hours.
	if ts < 10*time.Millisecond || tl > 10*time.Minute {
		t.Errorf("implausible iteration times: %v, %v", ts, tl)
	}
}

func TestComputeTimeErrors(t *testing.T) {
	w := paperWorkload(t, "1.6B")
	w.GPUFlops = 0
	if _, err := w.ComputeTime(); err == nil {
		t.Error("zero flops: want error")
	}
	w = paperWorkload(t, "1.6B")
	w.MicroBatches = 0
	if _, err := w.ComputeTime(); err == nil {
		t.Error("zero microbatches: want error")
	}
}

func TestBusyPhasesWithinIteration(t *testing.T) {
	w := paperWorkload(t, "5.3B")
	iter, err := w.IterationTime()
	if err != nil {
		t.Fatal(err)
	}
	phases, err := w.BusyPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2*w.MicroBatches { // PP sends only; DP=1
		t.Errorf("%d phases, want %d", len(phases), 2*w.MicroBatches)
	}
	for i, p := range phases {
		if p.Start < 0 || p.End > iter || p.Start >= p.End {
			t.Errorf("phase %d = %+v outside iteration %v", i, p, iter)
		}
	}
}

func TestBusyPhasesIncludeAllReduceWithDP(t *testing.T) {
	topo, err := parallel.NewTopology(4, 4, 4, 2) // DP = 2
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.GPT2Size("1.6B")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(cfg, topo, gbps100)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := w.BusyPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2*w.MicroBatches+1 {
		t.Errorf("%d phases, want %d (PP sends + all-reduce)", len(phases), 2*w.MicroBatches+1)
	}
	iter, err := w.IterationTime()
	if err != nil {
		t.Fatal(err)
	}
	last := phases[len(phases)-1]
	if last.End != iter {
		t.Errorf("all-reduce should end at iteration boundary: %v vs %v", last.End, iter)
	}
}

func TestTimelineHasIdleSlots(t *testing.T) {
	w := paperWorkload(t, "5.3B")
	tl, period, err := w.BuildTimeline(ProfileIterations)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileIdleSlots(tl, period)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Windows) == 0 {
		t.Fatal("no idle windows found; checkpoint scheduling would be impossible")
	}
	if prof.IdleFraction <= 0.3 {
		t.Errorf("idle fraction %.2f; PP training should leave most of the NIC idle", prof.IdleFraction)
	}
	if prof.IdleFraction >= 1.0 {
		t.Errorf("idle fraction %.2f; there must be some busy traffic", prof.IdleFraction)
	}
}

func TestProfileValidation(t *testing.T) {
	w := paperWorkload(t, "1.6B")
	tl, _, err := w.BuildTimeline(ProfileIterations)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileIdleSlots(tl, 0); err == nil {
		t.Error("zero period: want error")
	}
	if _, _, err := w.BuildTimeline(0); err == nil {
		t.Error("zero iterations: want error")
	}
}

func TestExtendTimelineMatchesProfile(t *testing.T) {
	w := paperWorkload(t, "5.3B")
	tl, period, err := w.BuildTimeline(ProfileIterations)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileIdleSlots(tl, period)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := prof.ExtendTimeline(10 * period)
	if err != nil {
		t.Fatal(err)
	}
	// Every profiled idle window must be idle in the extension, at every
	// period, and busy regions must exist between them.
	for i := 0; i < 10; i++ {
		base := time.Duration(i) * period
		for _, win := range prof.Windows {
			mid := base + (win.Start+win.End)/2
			if ext.BusyAt(mid) {
				t.Fatalf("extended timeline busy inside idle window at period %d", i)
			}
		}
	}
	if len(ext.Busy()) == 0 {
		t.Error("extension has no busy spans")
	}
	if _, err := prof.ExtendTimeline(0); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestCommBytesScaleWithModel(t *testing.T) {
	small := paperWorkload(t, "1.6B")
	large := paperWorkload(t, "20B")
	if small.CommBytesPerIteration() >= large.CommBytesPerIteration() {
		t.Error("larger hidden size must move more activation bytes")
	}
	want := int64(small.SeqPerMicroBatch) * int64(small.SeqLen) * 1600 * 2
	if small.ActivationBytes() != want {
		t.Errorf("activation bytes = %d, want %d", small.ActivationBytes(), want)
	}
}

// The profiler must verify idle windows across every observed iteration:
// a window violated by aperiodic traffic mid-horizon is dropped rather
// than trusted.
func TestProfileDropsViolatedWindows(t *testing.T) {
	w := paperWorkload(t, "5.3B")
	tl, period, err := w.BuildTimeline(ProfileIterations)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ProfileIdleSlots(tl, period)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Windows) == 0 {
		t.Fatal("no idle windows in the clean profile")
	}

	// Inject a one-off burst covering the first idle window of iteration 20.
	first := clean.Windows[0]
	base := 20 * period
	if err := tl.AddBusy(base+first.Start, base+first.End); err != nil {
		t.Fatal(err)
	}
	dirty, err := ProfileIdleSlots(tl, period)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty.Windows) >= len(clean.Windows) {
		t.Errorf("violated window not dropped: %d -> %d windows",
			len(clean.Windows), len(dirty.Windows))
	}
	if dirty.IdleFraction >= clean.IdleFraction {
		t.Errorf("idle fraction did not shrink: %v -> %v",
			clean.IdleFraction, dirty.IdleFraction)
	}
}
