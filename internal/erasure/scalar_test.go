package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// The distributed per-worker encoding must agree with chunk-level encoding:
// splitting each chunk into segments, scalar-multiplying each worker's
// segment and XOR-reducing across data groups yields exactly the parity
// chunks Encode produces.
func TestDistributedEncodingMatchesChunkEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	k, m := 2, 2
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	segments := 4 // workers per data group
	segSize := c.ChunkAlign(512)
	chunkSize := segments * segSize

	data := make([][]byte, k)
	for j := range data {
		data[j] = make([]byte, chunkSize)
		r.Read(data[j])
	}
	// The coding unit of the protocol is the worker packet (segment): a
	// chunk is a concatenation of independently coded segments. Build the
	// oracle by encoding each segment column as its own region.
	wantParity := make([][]byte, m)
	for i := range wantParity {
		wantParity[i] = make([]byte, chunkSize)
	}
	for seg := 0; seg < segments; seg++ {
		in := make([][]byte, k)
		out := make([][]byte, m)
		for j := range in {
			in[j] = data[j][seg*segSize : (seg+1)*segSize]
		}
		for i := range out {
			out[i] = wantParity[i][seg*segSize : (seg+1)*segSize]
		}
		if err := c.Encode(in, out); err != nil {
			t.Fatal(err)
		}
	}

	// Distributed path: per (parity index, segment), each data group's
	// worker contributes coef * its segment; contributions XOR together.
	for i := 0; i < m; i++ {
		for seg := 0; seg < segments; seg++ {
			acc := make([]byte, segSize)
			for j := 0; j < k; j++ {
				coef, err := c.ParityCoefficient(i, j)
				if err != nil {
					t.Fatal(err)
				}
				contrib := make([]byte, segSize)
				src := data[j][seg*segSize : (seg+1)*segSize]
				if err := c.ScalarMulInto(coef, contrib, src); err != nil {
					t.Fatal(err)
				}
				for b := range acc {
					acc[b] ^= contrib[b]
				}
			}
			want := wantParity[i][seg*segSize : (seg+1)*segSize]
			if !bytes.Equal(acc, want) {
				t.Errorf("parity %d segment %d: distributed encoding mismatch", i, seg)
			}
		}
	}
}

// Distributed recovery: compute wanted chunks segment-by-segment with
// TransformMatrix coefficients and compare with TransformSchedule output.
func TestDistributedRecoveryMatchesTransform(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	segSize := c.ChunkAlign(256)
	chunkSize := 2 * segSize
	data := make([][]byte, 2)
	parity := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		data[i] = make([]byte, chunkSize)
		r.Read(data[i])
		parity[i] = make([]byte, chunkSize)
	}
	// Encode per segment: the protocol's region layout.
	for seg := 0; seg < 2; seg++ {
		in := [][]byte{
			data[0][seg*segSize : (seg+1)*segSize],
			data[1][seg*segSize : (seg+1)*segSize],
		}
		out := [][]byte{
			parity[0][seg*segSize : (seg+1)*segSize],
			parity[1][seg*segSize : (seg+1)*segSize],
		}
		if err := c.Encode(in, out); err != nil {
			t.Fatal(err)
		}
	}

	available := []int{0, 3} // D0, P1 survive (Fig. 7 scenario)
	wanted := []int{1, 2}    // recover D1, P0
	tm, err := c.TransformMatrix(available, wanted)
	if err != nil {
		t.Fatal(err)
	}
	avail := [][]byte{data[0], parity[1]}
	wantOut := [][]byte{data[1], parity[0]}

	for wi := range wanted {
		for seg := 0; seg < 2; seg++ {
			acc := make([]byte, segSize)
			for ai := range available {
				coef := tm.At(wi, ai)
				if coef == 0 {
					continue
				}
				contrib := make([]byte, segSize)
				src := avail[ai][seg*segSize : (seg+1)*segSize]
				if err := c.ScalarMulInto(coef, contrib, src); err != nil {
					t.Fatal(err)
				}
				for b := range acc {
					acc[b] ^= contrib[b]
				}
			}
			want := wantOut[wi][seg*segSize : (seg+1)*segSize]
			if !bytes.Equal(acc, want) {
				t.Errorf("wanted chunk %d segment %d: distributed recovery mismatch", wanted[wi], seg)
			}
		}
	}
}

func TestScalarScheduleCachedAndValidated(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.ScalarSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.ScalarSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("scalar schedule not cached")
	}
	if _, err := c.ScalarSchedule(0); err == nil {
		t.Error("coef 0: want error")
	}
	if _, err := c.ScalarSchedule(256); err == nil {
		t.Error("coef 256 outside GF(2^8): want error")
	}
	if _, err := c.ScalarSchedule(-1); err == nil {
		t.Error("negative coef: want error")
	}
}

func TestScalarMulIdentityAndZero(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, c.ChunkAlign(64))
	for i := range src {
		src[i] = byte(i * 7)
	}
	dst := make([]byte, len(src))
	if err := c.ScalarMulInto(1, dst, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("coef 1 is not identity")
	}
	if err := c.ScalarMulInto(0, dst, src); err != nil {
		t.Fatal(err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("coef 0 did not clear dst")
		}
	}
	if err := c.ScalarMulInto(2, dst, src[:8]); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestParityCoefficientValidation(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ParityCoefficient(-1, 0); err == nil {
		t.Error("negative parity index: want error")
	}
	if _, err := c.ParityCoefficient(2, 0); err == nil {
		t.Error("parity index >= m: want error")
	}
	if _, err := c.ParityCoefficient(0, 3); err == nil {
		t.Error("data group >= k: want error")
	}
	coef, err := c.ParityCoefficient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Generator()
	if coef != gen.At(3, 0) {
		t.Errorf("coefficient %d != generator entry %d", coef, gen.At(3, 0))
	}
}
