package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeChunks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

func encodeAll(t *testing.T, c *Code, r *rand.Rand, size int) [][]byte {
	t.Helper()
	data := makeChunks(r, c.K(), size)
	parity := make([][]byte, c.M())
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	return append(data, parity...)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := New(2, 2, WithWordSize(5)); err == nil {
		t.Error("w=5: want error")
	}
	if _, err := New(200, 200, WithWordSize(8)); err == nil {
		t.Error("k+m > 2^w: want error")
	}
	if _, err := New(200, 200, WithWordSize(16), WithImprovedMatrix(false)); err != nil {
		t.Errorf("k+m=400 fits GF(2^16): %v", err)
	}
}

func TestChunkAlign(t *testing.T) {
	c, err := New(2, 2) // w=8 -> unit 64
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {1, 64}, {63, 64}, {64, 64}, {65, 128}, {128, 128},
	} {
		if got := c.ChunkAlign(tc.in); got != tc.want {
			t.Errorf("ChunkAlign(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestEncodeThenVerify(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ k, m int }{{2, 2}, {4, 2}, {3, 3}, {6, 2}, {2, 4}} {
		c, err := New(tc.k, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		chunks := encodeAll(t, c, r, 256)
		ok, err := c.Verify(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("k=%d m=%d: verify failed on fresh encoding", tc.k, tc.m)
		}
		// Corrupt a byte: verify must fail.
		chunks[tc.k][3] ^= 0xff
		ok, err = c.Verify(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("k=%d m=%d: verify passed on corrupted parity", tc.k, tc.m)
		}
	}
}

// TestReconstructAllErasurePatterns is the MDS acid test: for every subset
// of up to m erased chunks, reconstruction must restore the original bytes.
func TestReconstructAllErasurePatterns(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, tc := range []struct{ k, m int }{{2, 2}, {4, 2}, {3, 3}, {2, 3}} {
		c, err := New(tc.k, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		n := tc.k + tc.m
		orig := encodeAll(t, c, r, 192)

		// Enumerate all non-empty erasure sets of size <= m via bitmask.
		for mask := 1; mask < (1 << n); mask++ {
			erased := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					erased++
				}
			}
			if erased > tc.m {
				continue
			}
			work := make([][]byte, n)
			for i := range work {
				if mask&(1<<i) != 0 {
					work[i] = nil
				} else {
					work[i] = append([]byte(nil), orig[i]...)
				}
			}
			if err := c.Reconstruct(work); err != nil {
				t.Fatalf("k=%d m=%d mask=%b: %v", tc.k, tc.m, mask, err)
			}
			for i := range work {
				if !bytes.Equal(work[i], orig[i]) {
					t.Fatalf("k=%d m=%d mask=%b: chunk %d mismatch", tc.k, tc.m, mask, i)
				}
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := encodeAll(t, c, r, 64)
	chunks[0], chunks[1], chunks[2] = nil, nil, nil
	if err := c.Reconstruct(chunks); err == nil {
		t.Error("3 erasures with m=2: want error")
	}
}

func TestReconstructNoErasuresIsNoop(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := encodeAll(t, c, r, 64)
	snapshot := make([][]byte, len(chunks))
	for i := range chunks {
		snapshot[i] = append([]byte(nil), chunks[i]...)
	}
	if err := c.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if !bytes.Equal(chunks[i], snapshot[i]) {
			t.Errorf("chunk %d modified by no-op reconstruct", i)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := func(n, size int) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			out[i] = make([]byte, size)
		}
		return out
	}
	if err := c.Encode(good(1, 64), good(2, 64)); err == nil {
		t.Error("wrong data count: want error")
	}
	if err := c.Encode(good(2, 64), good(3, 64)); err == nil {
		t.Error("wrong parity count: want error")
	}
	if err := c.Encode(good(2, 60), good(2, 60)); err == nil {
		t.Error("unaligned size: want error")
	}
	data := good(2, 64)
	data[1] = nil
	if err := c.Encode(data, good(2, 64)); err == nil {
		t.Error("nil data chunk: want error")
	}
}

func TestTransformScheduleValidation(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TransformSchedule([]int{0}, []int{1}); err == nil {
		t.Error("too few available: want error")
	}
	if _, err := c.TransformSchedule([]int{0, 0}, []int{1}); err == nil {
		t.Error("duplicate available: want error")
	}
	if _, err := c.TransformSchedule([]int{0, 9}, []int{1}); err == nil {
		t.Error("out-of-range available: want error")
	}
	if _, err := c.TransformSchedule([]int{0, 1}, nil); err == nil {
		t.Error("empty wanted: want error")
	}
	if _, err := c.TransformSchedule([]int{0, 1}, []int{7}); err == nil {
		t.Error("out-of-range wanted: want error")
	}
}

// TestTransformRecoveryFlow mirrors the paper's Fig. 7: with k=m=2, chunks
// D0 and P1 survive; the transform computes D1 and P0 from them (decode
// shaped exactly like an encode).
func TestTransformRecoveryFlow(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := encodeAll(t, c, r, 128)

	sched, err := c.TransformSchedule([]int{0, 3}, []int{1, 2}) // have D0, P1; want D1, P0
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, 2)
	for i := range out {
		out[i] = make([]byte, 128)
	}
	if err := sched.Execute([][]byte{orig[0], orig[3]}, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0], orig[1]) {
		t.Error("recovered D1 mismatch")
	}
	if !bytes.Equal(out[1], orig[2]) {
		t.Error("recovered P0 mismatch")
	}
}

func TestEncodeRangeMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	size := 512
	data := makeChunks(r, 4, size)
	want := make([][]byte, 2)
	got := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		want[i] = make([]byte, size)
		got[i] = make([]byte, size)
	}
	if err := c.Encode(data, want); err != nil {
		t.Fatal(err)
	}
	psize := size / 8
	mid := psize / 2
	if err := c.EncodeRange(data, got, 0, mid); err != nil {
		t.Fatal(err)
	}
	if err := c.EncodeRange(data, got, mid, psize); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("parity %d: ranged encode mismatch", i)
		}
	}
}

func TestOptionCombinationsAllMDS(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	for _, w := range []uint{4, 8, 16} {
		for _, improve := range []bool{false, true} {
			for _, smart := range []bool{false, true} {
				c, err := New(3, 2, WithWordSize(w), WithImprovedMatrix(improve), WithSmartSchedule(smart))
				if err != nil {
					t.Fatal(err)
				}
				size := c.ChunkAlign(100)
				orig := encodeAll(t, c, r, size)
				work := make([][]byte, 5)
				for i := range work {
					work[i] = append([]byte(nil), orig[i]...)
				}
				work[0], work[4] = nil, nil
				if err := c.Reconstruct(work); err != nil {
					t.Fatalf("w=%d improve=%v smart=%v: %v", w, improve, smart, err)
				}
				for i := range work {
					if !bytes.Equal(work[i], orig[i]) {
						t.Errorf("w=%d improve=%v smart=%v: chunk %d mismatch", w, improve, smart, i)
					}
				}
			}
		}
	}
}

// Property: for random data and a random erasure pattern of size <= m,
// reconstruction is exact.
func TestReconstructQuick(t *testing.T) {
	c, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	size := c.ChunkAlign(64)
	prop := func(seed int64, maskRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		data := makeChunks(r, 4, size)
		parity := make([][]byte, 3)
		for i := range parity {
			parity[i] = make([]byte, size)
		}
		if err := c.Encode(data, parity); err != nil {
			return false
		}
		orig := append(data, parity...)

		// Derive an erasure set of size <= 3 from the mask.
		work := make([][]byte, 7)
		erased := 0
		for i := range work {
			if maskRaw&(1<<i) != 0 && erased < 3 {
				work[i] = nil
				erased++
			} else {
				work[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
