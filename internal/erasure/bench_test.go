package erasure

import (
	"fmt"
	"testing"
)

func benchChunks(k, m, size int) (data, parity [][]byte) {
	data = make([][]byte, k)
	parity = make([][]byte, m)
	for i := range data {
		data[i] = make([]byte, size)
		for j := 0; j < size; j += 64 {
			data[i][j] = byte(i*7 + j)
		}
	}
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	return data, parity
}

func BenchmarkEncode(b *testing.B) {
	for _, km := range [][2]int{{2, 2}, {4, 2}, {8, 4}} {
		b.Run(fmt.Sprintf("k%d_m%d", km[0], km[1]), func(b *testing.B) {
			code, err := New(km[0], km[1])
			if err != nil {
				b.Fatal(err)
			}
			size := code.ChunkAlign(4 << 20)
			data, parity := benchChunks(km[0], km[1], size)
			b.SetBytes(int64(km[0] * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := code.Encode(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeScheduleVariants(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"plain", []Option{WithImprovedMatrix(false), WithSmartSchedule(false)}},
		{"improved", []Option{WithImprovedMatrix(true), WithSmartSchedule(false)}},
		{"smart", []Option{WithImprovedMatrix(true), WithSmartSchedule(true)}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			code, err := New(4, 2, variant.opts...)
			if err != nil {
				b.Fatal(err)
			}
			size := code.ChunkAlign(4 << 20)
			data, parity := benchChunks(4, 2, size)
			b.SetBytes(int64(4 * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := code.Encode(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	code, err := New(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	size := code.ChunkAlign(4 << 20)
	data, parity := benchChunks(4, 2, size)
	if err := code.Encode(data, parity); err != nil {
		b.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(int64(2 * size)) // two chunks rebuilt
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(full))
		copy(work, full)
		work[0], work[2] = nil, nil
		if err := code.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMul(b *testing.B) {
	code, err := New(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	size := code.ChunkAlign(4 << 20)
	src := make([]byte, size)
	dst := make([]byte, size)
	coef, err := code.ParityCoefficient(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	if coef <= 1 { // pick a non-trivial coefficient
		coef, err = code.ParityCoefficient(1, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.ScalarMulInto(coef, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}
