package erasure

import (
	"fmt"

	"eccheck/internal/bitmatrix"
	"eccheck/internal/gf"
)

// Scalar schedules implement the distributed (per-worker) form of the code:
// a worker in data group j encodes its own packet for parity index i by
// multiplying the packet region with the single generator coefficient
// E[k+i][j]; XOR reduction across the reduction group then sums those
// contributions into the parity packet. Likewise, recovery multiplies
// surviving packets by decode-transform coefficients. Both are region ×
// scalar products over GF(2^w), compiled once per coefficient into an XOR
// schedule and memoised.

// ScalarSchedule returns a 1-chunk-in, 1-chunk-out XOR schedule computing
// dst = coef · src over GF(2^w). The coefficient must be nonzero (a zero
// contribution is simply skipped by callers). Schedules are cached on the
// Code.
func (c *Code) ScalarSchedule(coef int) (*bitmatrix.Schedule, error) {
	if coef <= 0 || coef >= c.field.Size() {
		return nil, fmt.Errorf("erasure: coefficient %d outside (0, 2^%d)", coef, c.cfg.w)
	}
	c.scalarMu.Lock()
	defer c.scalarMu.Unlock()
	if c.scalarSchedules == nil {
		c.scalarSchedules = make(map[int]*bitmatrix.Schedule)
	}
	if s, ok := c.scalarSchedules[coef]; ok {
		return s, nil
	}
	mat, err := c.field.NewMatrix(1, 1)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	mat.Set(0, 0, coef)
	s, err := c.compileMatrix(mat)
	if err != nil {
		return nil, err
	}
	c.scalarSchedules[coef] = s
	return s, nil
}

// ParityCoefficient returns the generator coefficient E[k+i][j]: the factor
// a data-group-j worker applies to its packet when contributing to parity
// chunk i.
func (c *Code) ParityCoefficient(parityIndex, dataGroup int) (int, error) {
	if parityIndex < 0 || parityIndex >= c.m {
		return 0, fmt.Errorf("erasure: parity index %d out of range [0, %d)", parityIndex, c.m)
	}
	if dataGroup < 0 || dataGroup >= c.k {
		return 0, fmt.Errorf("erasure: data group %d out of range [0, %d)", dataGroup, c.k)
	}
	return c.gen.At(c.k+parityIndex, dataGroup), nil
}

// ScalarMulInto computes dst = coef · src via the cached schedule. src and
// dst must be equal-length, ChunkAlign-ed buffers. A zero coefficient
// clears dst.
func (c *Code) ScalarMulInto(coef int, dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("erasure: scalar mul length mismatch: dst=%d src=%d", len(dst), len(src))
	}
	if coef == 0 {
		clear(dst)
		return nil
	}
	s, err := c.ScalarSchedule(coef)
	if err != nil {
		return err
	}
	return s.Execute([][]byte{src}, [][]byte{dst})
}

// DeltaParity computes dst = E[k+parityIndex][dataGroup] · delta: the
// parity-side image enc(Δ) of a data-region delta. By linearity of the
// code, XORing dst into the stored parity region keeps it identical to a
// full re-encode of the changed data — the ECRM-style incremental parity
// repair elastic membership and SaveIncremental rely on. dst and delta
// must be equal-length, ChunkAlign-ed buffers.
func (c *Code) DeltaParity(parityIndex, dataGroup int, dst, delta []byte) error {
	coef, err := c.ParityCoefficient(parityIndex, dataGroup)
	if err != nil {
		return err
	}
	return c.ScalarMulInto(coef, dst, delta)
}

// UpdateParity applies the incremental repair P_i ^= E[k+i][dataGroup]·Δ
// in place for every parity region after a data-group region changed by
// delta. parity[i] is parity chunk i's region covering the same bytes;
// all regions and delta must be equal length. The result is byte-
// identical to re-encoding the full data. A scratch buffer is allocated
// per call; the hot incremental-save path streams DeltaParity into pooled
// buffers instead.
func (c *Code) UpdateParity(dataGroup int, delta []byte, parity [][]byte) error {
	if len(parity) != c.m {
		return fmt.Errorf("erasure: got %d parity regions, want m=%d", len(parity), c.m)
	}
	scratch := make([]byte, len(delta))
	for i, p := range parity {
		if len(p) != len(delta) {
			return fmt.Errorf("erasure: parity region %d has %d bytes, delta %d", i, len(p), len(delta))
		}
		if err := c.DeltaParity(i, dataGroup, scratch, delta); err != nil {
			return err
		}
		if err := gf.XORSlice(p, scratch); err != nil {
			return err
		}
	}
	return nil
}

// TransformMatrix returns the matrix expressing the wanted chunks in terms
// of the available chunks (the same computation TransformSchedule compiles,
// exposed so the distributed recovery path can extract per-worker scalar
// coefficients).
func (c *Code) TransformMatrix(available, wanted []int) (*gf.Matrix, error) {
	if len(available) != c.k {
		return nil, fmt.Errorf("erasure: need exactly k=%d available chunks, got %d", c.k, len(available))
	}
	sub, err := c.gen.SubMatrix(available)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	inv, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode system is singular: %w", err)
	}
	wantedRows, err := c.gen.SubMatrix(wanted)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	out, err := wantedRows.Mul(inv)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return out, nil
}
