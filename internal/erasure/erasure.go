// Package erasure implements a systematic Cauchy Reed-Solomon erasure code:
// k data chunks are extended with m parity chunks such that any k of the
// k+m chunks reconstruct the original data. Encoding and reconstruction are
// XOR-only, driven by bitmatrix schedules, which is the coding scheme
// ECCheck uses for checkpoint chunks.
package erasure

import (
	"fmt"
	"sync"

	"eccheck/internal/bitmatrix"
	"eccheck/internal/cauchy"
	"eccheck/internal/gf"
)

// Option configures a Code.
type Option func(*config)

type config struct {
	w       uint
	improve bool
	smart   bool
}

// WithWordSize selects the GF(2^w) word size (4, 8 or 16). Default is 8.
func WithWordSize(w uint) Option {
	return func(c *config) { c.w = w }
}

// WithImprovedMatrix enables the ones-minimising Cauchy matrix improvement.
// Default is on.
func WithImprovedMatrix(v bool) Option {
	return func(c *config) { c.improve = v }
}

// WithSmartSchedule enables differential XOR scheduling. Default is on.
func WithSmartSchedule(v bool) Option {
	return func(c *config) { c.smart = v }
}

// Code is an immutable (k, m) Cauchy Reed-Solomon code. It is safe for
// concurrent use: encoding state lives entirely in caller-provided buffers.
type Code struct {
	k, m  int
	field *gf.Field
	cfg   config
	gen   *gf.Matrix // (k+m) x k systematic generator
	enc   *bitmatrix.Schedule

	scalarMu        sync.Mutex
	scalarSchedules map[int]*bitmatrix.Schedule
}

// New constructs a (k, m) code. k and m must be positive and k+m must fit
// in the chosen field.
func New(k, m int, opts ...Option) (*Code, error) {
	cfg := config{w: 8, improve: true, smart: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	field, err := gf.NewField(cfg.w)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	gen, err := cauchy.Generator(field, k, m, cauchy.Options{Improve: cfg.improve})
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	c := &Code{k: k, m: m, field: field, cfg: cfg, gen: gen}
	parityRows := make([]int, m)
	for i := range parityRows {
		parityRows[i] = k + i
	}
	c.enc, err = c.compile(parityRows)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// K returns the number of data chunks.
func (c *Code) K() int { return c.k }

// M returns the number of parity chunks.
func (c *Code) M() int { return c.m }

// WordSize returns the field word size w.
func (c *Code) WordSize() uint { return c.cfg.w }

// Generator returns a copy of the (k+m)×k generator matrix.
func (c *Code) Generator() *gf.Matrix { return c.gen.Clone() }

// EncodeXORCount returns the number of XOR ops in the compiled encoding
// schedule; used by ablation benchmarks comparing scheduling strategies.
func (c *Code) EncodeXORCount() int { return c.enc.XORCount() }

// ChunkAlign returns the smallest chunk size >= size that the code can
// operate on: a multiple of 8·w bytes so each of the w packets is
// 8-byte aligned for the wide XOR kernel.
func (c *Code) ChunkAlign(size int) int {
	unit := 8 * int(c.cfg.w)
	if size%unit == 0 {
		return size
	}
	return (size/unit + 1) * unit
}

// compile builds an XOR schedule computing the given generator rows from
// the k data chunks.
func (c *Code) compile(rows []int) (*bitmatrix.Schedule, error) {
	sub, err := c.gen.SubMatrix(rows)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return c.compileMatrix(sub)
}

func (c *Code) compileMatrix(m *gf.Matrix) (*bitmatrix.Schedule, error) {
	bm, err := bitmatrix.FromMatrix(c.field, m)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	w := int(c.cfg.w)
	if c.cfg.smart {
		s, err := bitmatrix.CompileSmart(bm, m.Cols(), m.Rows(), w)
		if err != nil {
			return nil, fmt.Errorf("erasure: %w", err)
		}
		return s, nil
	}
	s, err := bitmatrix.Compile(bm, m.Cols(), m.Rows(), w)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return s, nil
}

func (c *Code) checkChunks(chunks [][]byte, want int, label string) (int, error) {
	if len(chunks) != want {
		return 0, fmt.Errorf("erasure: got %d %s chunks, want %d", len(chunks), label, want)
	}
	size := -1
	for i, ch := range chunks {
		if ch == nil {
			continue
		}
		if size == -1 {
			size = len(ch)
		} else if len(ch) != size {
			return 0, fmt.Errorf("erasure: %s chunk %d has size %d, want %d", label, i, len(ch), size)
		}
	}
	if size == -1 {
		return 0, fmt.Errorf("erasure: all %s chunks are nil", label)
	}
	if size%(8*int(c.cfg.w)) != 0 {
		return 0, fmt.Errorf("erasure: chunk size %d not a multiple of %d (use ChunkAlign)",
			size, 8*int(c.cfg.w))
	}
	return size, nil
}

// Encode fills the m parity chunks from the k data chunks. All chunks must
// be non-nil, equal-sized, and ChunkAlign-ed.
func (c *Code) Encode(data, parity [][]byte) error {
	if _, err := c.checkChunks(data, c.k, "data"); err != nil {
		return err
	}
	if _, err := c.checkChunks(parity, c.m, "parity"); err != nil {
		return err
	}
	for i, d := range data {
		if d == nil {
			return fmt.Errorf("erasure: data chunk %d is nil", i)
		}
	}
	return c.enc.Execute(data, parity)
}

// EncodeRange encodes only the packet byte range [lo, hi) of every chunk,
// enabling a worker pool to split one encode across cores. lo and hi index
// within a packet (chunk size / w).
func (c *Code) EncodeRange(data, parity [][]byte, lo, hi int) error {
	return c.enc.ExecuteRange(data, parity, lo, hi)
}

// TransformSchedule compiles an XOR schedule that computes the chunks in
// wanted (indices in [0, k+m)) from the chunks in available (exactly k
// distinct indices in [0, k+m)). This single primitive serves both
// reconstruction after failures and ECCheck's recovery encoding (where
// surviving data and parity chunks act as the "data" of a fresh encode).
func (c *Code) TransformSchedule(available, wanted []int) (*bitmatrix.Schedule, error) {
	if len(available) != c.k {
		return nil, fmt.Errorf("erasure: need exactly k=%d available chunks, got %d", c.k, len(available))
	}
	seen := make(map[int]bool, len(available))
	for _, idx := range available {
		if idx < 0 || idx >= c.k+c.m {
			return nil, fmt.Errorf("erasure: available index %d out of range [0, %d)", idx, c.k+c.m)
		}
		if seen[idx] {
			return nil, fmt.Errorf("erasure: duplicate available index %d", idx)
		}
		seen[idx] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("erasure: no wanted chunks")
	}
	for _, idx := range wanted {
		if idx < 0 || idx >= c.k+c.m {
			return nil, fmt.Errorf("erasure: wanted index %d out of range [0, %d)", idx, c.k+c.m)
		}
	}

	// The available chunks are gen[available] · D where D is the original
	// data. Inverting that k×k system expresses D in terms of the available
	// chunks, and composing with the wanted generator rows expresses each
	// wanted chunk directly in terms of the available chunks.
	sub, err := c.gen.SubMatrix(available)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	inv, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode system is singular: %w", err)
	}
	wantedRows, err := c.gen.SubMatrix(wanted)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	transform, err := wantedRows.Mul(inv)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return c.compileMatrix(transform)
}

// Reconstruct fills in the missing (nil) chunks of a full chunk vector.
// chunks has length k+m: chunks[0..k) are data, chunks[k..k+m) are parity.
// At least k chunks must be present. Present chunks are left untouched;
// missing chunks are allocated and recomputed.
func (c *Code) Reconstruct(chunks [][]byte) error {
	if len(chunks) != c.k+c.m {
		return fmt.Errorf("erasure: got %d chunks, want %d", len(chunks), c.k+c.m)
	}
	size, err := c.checkChunks(chunks, c.k+c.m, "coded")
	if err != nil {
		return err
	}

	available := make([]int, 0, c.k)
	missing := make([]int, 0, c.m)
	for i, ch := range chunks {
		if ch != nil {
			if len(available) < c.k {
				available = append(available, i)
			}
		} else {
			missing = append(missing, i)
		}
	}
	if len(available) < c.k {
		return fmt.Errorf("erasure: only %d chunks present, need at least k=%d",
			len(available), c.k)
	}
	if len(missing) == 0 {
		return nil
	}

	sched, err := c.TransformSchedule(available, missing)
	if err != nil {
		return err
	}
	in := make([][]byte, c.k)
	for i, idx := range available {
		in[i] = chunks[idx]
	}
	out := make([][]byte, len(missing))
	for i := range out {
		out[i] = make([]byte, size)
	}
	if err := sched.Execute(in, out); err != nil {
		return err
	}
	for i, idx := range missing {
		chunks[idx] = out[i]
	}
	return nil
}

// Verify recomputes the parity chunks and reports whether they match the
// provided ones. All k+m chunks must be present.
func (c *Code) Verify(chunks [][]byte) (bool, error) {
	if len(chunks) != c.k+c.m {
		return false, fmt.Errorf("erasure: got %d chunks, want %d", len(chunks), c.k+c.m)
	}
	size := -1
	for i, ch := range chunks {
		if ch == nil {
			return false, fmt.Errorf("erasure: chunk %d is nil", i)
		}
		if size == -1 {
			size = len(ch)
		} else if len(ch) != size {
			return false, fmt.Errorf("erasure: chunk %d has size %d, want %d", i, len(ch), size)
		}
	}
	fresh := make([][]byte, c.m)
	for i := range fresh {
		fresh[i] = make([]byte, size)
	}
	if err := c.Encode(chunks[:c.k], fresh); err != nil {
		return false, err
	}
	for i := range fresh {
		got := chunks[c.k+i]
		for b := range fresh[i] {
			if fresh[i][b] != got[b] {
				return false, nil
			}
		}
	}
	return true, nil
}
