package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// Delta-parity repair must be byte-identical to a full re-encode: for any
// data-chunk mutation Δ, P_i ^= coef(i,j)·Δ lands every parity chunk on
// exactly the bytes Encode would produce from the mutated data.
func TestDeltaParityMatchesFullReencode(t *testing.T) {
	for _, km := range [][2]int{{2, 2}, {3, 2}, {4, 3}} {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(91 + k*10 + m)))
		size := c.ChunkAlign(768)

		data := make([][]byte, k)
		for j := range data {
			data[j] = make([]byte, size)
			r.Read(data[j])
		}
		parity := make([][]byte, m)
		for i := range parity {
			parity[i] = make([]byte, size)
		}
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}

		// Mutate each data chunk in turn and repair incrementally.
		for j := 0; j < k; j++ {
			mutated := make([]byte, size)
			r.Read(mutated)
			delta := make([]byte, size)
			for b := range delta {
				delta[b] = data[j][b] ^ mutated[b]
			}
			data[j] = mutated

			if err := c.UpdateParity(j, delta, parity); err != nil {
				t.Fatalf("(%d,%d) UpdateParity group %d: %v", k, m, j, err)
			}

			want := make([][]byte, m)
			for i := range want {
				want[i] = make([]byte, size)
			}
			if err := c.Encode(data, want); err != nil {
				t.Fatal(err)
			}
			for i := range parity {
				if !bytes.Equal(parity[i], want[i]) {
					t.Fatalf("(%d,%d) parity %d diverged from full re-encode after mutating group %d", k, m, i, j)
				}
			}
		}
	}
}

// A zero delta must leave parity untouched (the no-op fast path callers
// rely on when a buffer slice did not change).
func TestDeltaParityZeroDeltaIsNoop(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(92))
	size := c.ChunkAlign(256)
	data := [][]byte{make([]byte, size), make([]byte, size)}
	r.Read(data[0])
	r.Read(data[1])
	parity := [][]byte{make([]byte, size), make([]byte, size)}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	before := [][]byte{append([]byte(nil), parity[0]...), append([]byte(nil), parity[1]...)}
	if err := c.UpdateParity(1, make([]byte, size), parity); err != nil {
		t.Fatal(err)
	}
	for i := range parity {
		if !bytes.Equal(parity[i], before[i]) {
			t.Fatalf("parity %d changed under zero delta", i)
		}
	}
}

func TestDeltaParityValidation(t *testing.T) {
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	size := c.ChunkAlign(64)
	good := [][]byte{make([]byte, size), make([]byte, size)}
	if err := c.UpdateParity(0, make([]byte, size), good[:1]); err == nil {
		t.Error("wrong parity count: want error")
	}
	if err := c.UpdateParity(0, make([]byte, size), [][]byte{make([]byte, size), make([]byte, size-1)}); err == nil {
		t.Error("mismatched parity length: want error")
	}
	if err := c.UpdateParity(2, make([]byte, size), good); err == nil {
		t.Error("data group out of range: want error")
	}
	if err := c.DeltaParity(2, 0, make([]byte, size), make([]byte, size)); err == nil {
		t.Error("parity index out of range: want error")
	}
}
