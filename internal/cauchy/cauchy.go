// Package cauchy constructs Cauchy generator matrices over GF(2^w) for
// systematic Cauchy Reed-Solomon erasure codes.
//
// A Cauchy matrix C has C[i][j] = 1/(x_i + y_j) with all x_i, y_j distinct;
// every square submatrix of a Cauchy matrix is invertible, so the extended
// generator [I_k ; C] is MDS: any k rows are linearly independent and any k
// of the k+m coded chunks suffice to reconstruct the original k.
//
// The package also provides the "good" (ones-minimising) transformation from
// the CRS literature: dividing rows and columns by carefully chosen field
// elements preserves the MDS property while reducing the number of ones in
// the binary expansion of the matrix, which directly reduces the XOR count
// of bitmatrix encoding.
package cauchy

import (
	"fmt"
	"math/bits"

	"eccheck/internal/gf"
)

// Options configures generator matrix construction.
type Options struct {
	// Improve applies the ones-minimising row/column division step.
	Improve bool
}

// ParityMatrix returns the m×k Cauchy parity matrix over GF(2^w) with
// X = {0..m-1} and Y = {m..m+k-1}, i.e. C[i][j] = 1/(i XOR (m+j)).
// It requires k + m <= 2^w.
func ParityMatrix(f *gf.Field, k, m int) (*gf.Matrix, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("cauchy: k and m must be positive (k=%d, m=%d)", k, m)
	}
	if k+m > f.Size() {
		return nil, fmt.Errorf("cauchy: k+m = %d exceeds field size %d; use a larger w", k+m, f.Size())
	}
	c, err := f.NewMatrix(m, k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			inv, err := f.Inv(i ^ (m + j))
			if err != nil {
				return nil, fmt.Errorf("cauchy: building C[%d][%d]: %w", i, j, err)
			}
			c.Set(i, j, inv)
		}
	}
	return c, nil
}

// Generator returns the (k+m)×k systematic generator matrix [I_k ; C] where
// C is an m×k Cauchy parity matrix.
func Generator(f *gf.Field, k, m int, opts Options) (*gf.Matrix, error) {
	c, err := ParityMatrix(f, k, m)
	if err != nil {
		return nil, err
	}
	if opts.Improve {
		if err := improve(f, c); err != nil {
			return nil, err
		}
	}
	gen, err := f.NewMatrix(k+m, k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			gen.Set(k+i, j, c.At(i, j))
		}
	}
	return gen, nil
}

// OnesInBitmatrix counts the ones in the w×w binary expansion of element e:
// the XOR cost of multiplying a region by e in bitmatrix coding.
func OnesInBitmatrix(f *gf.Field, e int) int {
	w := int(f.W())
	ones := 0
	v := e
	for c := 0; c < w; c++ {
		ones += bits.OnesCount(uint(v))
		v = f.Mul(v, 2) // next column is e * x^c
	}
	return ones
}

// improve performs the classic CRS matrix improvement: first divide every
// column by its first-row element (making row 0 all ones), then for each
// remaining row pick the divisor that minimises the total bitmatrix ones of
// that row. Dividing a whole row or column by a nonzero constant preserves
// the Cauchy (and hence MDS) structure.
func improve(f *gf.Field, c *gf.Matrix) error {
	m, k := c.Rows(), c.Cols()
	// Column step: make row 0 all ones.
	for j := 0; j < k; j++ {
		d := c.At(0, j)
		if d == 0 {
			return fmt.Errorf("cauchy: zero element at (0, %d) during improvement", j)
		}
		dinv, err := f.Inv(d)
		if err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			c.Set(i, j, f.Mul(c.At(i, j), dinv))
		}
	}
	// Row step: for every row below the first, choose the divisor from the
	// row's own elements that minimises the bitmatrix ones of the row.
	for i := 1; i < m; i++ {
		best := -1
		bestDiv := 1
		for j := 0; j < k; j++ {
			div := c.At(i, j)
			if div == 0 {
				continue
			}
			dinv, err := f.Inv(div)
			if err != nil {
				return err
			}
			ones := 0
			for jj := 0; jj < k; jj++ {
				ones += OnesInBitmatrix(f, f.Mul(c.At(i, jj), dinv))
			}
			if best == -1 || ones < best {
				best = ones
				bestDiv = div
			}
		}
		if bestDiv != 1 {
			dinv, err := f.Inv(bestDiv)
			if err != nil {
				return err
			}
			for j := 0; j < k; j++ {
				c.Set(i, j, f.Mul(c.At(i, j), dinv))
			}
		}
	}
	return nil
}

// TotalOnes returns the total bitmatrix ones of a matrix: a proxy for the
// XOR cost of encoding with it.
func TotalOnes(f *gf.Field, m *gf.Matrix) int {
	total := 0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			total += OnesInBitmatrix(f, m.At(i, j))
		}
	}
	return total
}
