package cauchy

import (
	"testing"

	"eccheck/internal/gf"
)

// combinations yields all size-r subsets of [0, n).
func combinations(n, r int, fn func([]int)) {
	idx := make([]int, r)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == r {
			fn(idx)
			return
		}
		for i := start; i <= n-(r-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestParityMatrixElements(t *testing.T) {
	f := gf.MustField(8)
	k, m := 4, 2
	c, err := ParityMatrix(f, k, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			// C[i][j] must be the inverse of i XOR (m+j).
			if got := f.Mul(c.At(i, j), i^(m+j)); got != 1 {
				t.Errorf("C[%d][%d] * (x_i+y_j) = %d, want 1", i, j, got)
			}
		}
	}
}

func TestParityMatrixValidation(t *testing.T) {
	f := gf.MustField(4)
	if _, err := ParityMatrix(f, 0, 2); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := ParityMatrix(f, 2, 0); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := ParityMatrix(f, 10, 7); err == nil {
		t.Error("k+m > 2^w: want error")
	}
	if _, err := ParityMatrix(f, 8, 8); err != nil {
		t.Errorf("k+m == 2^w should be allowed: %v", err)
	}
}

// TestGeneratorIsMDS verifies that every k-row subset of the generator is
// invertible, i.e. any k of the k+m chunks reconstruct the data.
func TestGeneratorIsMDS(t *testing.T) {
	f := gf.MustField(8)
	cases := []struct{ k, m int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {2, 3}, {4, 2}, {3, 3}, {4, 4}, {6, 3},
	}
	for _, improved := range []bool{false, true} {
		for _, tc := range cases {
			gen, err := Generator(f, tc.k, tc.m, Options{Improve: improved})
			if err != nil {
				t.Fatalf("k=%d m=%d improved=%v: %v", tc.k, tc.m, improved, err)
			}
			if gen.Rows() != tc.k+tc.m || gen.Cols() != tc.k {
				t.Fatalf("generator shape %dx%d", gen.Rows(), gen.Cols())
			}
			combinations(tc.k+tc.m, tc.k, func(rows []int) {
				sub, err := gen.SubMatrix(rows)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sub.Invert(); err != nil {
					t.Errorf("k=%d m=%d improved=%v rows=%v: submatrix singular",
						tc.k, tc.m, improved, rows)
				}
			})
		}
	}
}

func TestGeneratorSystematicTop(t *testing.T) {
	f := gf.MustField(8)
	gen, err := Generator(f, 3, 2, Options{Improve: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := gen.SubMatrix([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.IsIdentity() {
		t.Errorf("top k rows are not identity:\n%s", sub)
	}
}

func TestImproveReducesOnes(t *testing.T) {
	f := gf.MustField(8)
	for _, tc := range []struct{ k, m int }{{4, 2}, {6, 3}, {8, 4}} {
		plain, err := ParityMatrix(f, tc.k, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		genImp, err := Generator(f, tc.k, tc.m, Options{Improve: true})
		if err != nil {
			t.Fatal(err)
		}
		impParity, err := genImp.SubMatrix(rangeInts(tc.k, tc.k+tc.m))
		if err != nil {
			t.Fatal(err)
		}
		if got, was := TotalOnes(f, impParity), TotalOnes(f, plain); got > was {
			t.Errorf("k=%d m=%d: improvement increased ones %d -> %d", tc.k, tc.m, was, got)
		}
	}
}

func TestImprovedFirstParityRowAllOnes(t *testing.T) {
	f := gf.MustField(8)
	gen, err := Generator(f, 5, 3, Options{Improve: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if gen.At(5, j) != 1 {
			t.Errorf("improved first parity row element %d = %d, want 1", j, gen.At(5, j))
		}
	}
}

func TestOnesInBitmatrix(t *testing.T) {
	f := gf.MustField(8)
	// Multiplying by 1 is the identity bitmatrix: exactly w ones.
	if got := OnesInBitmatrix(f, 1); got != 8 {
		t.Errorf("ones(1) = %d, want 8", got)
	}
	if got := OnesInBitmatrix(f, 0); got != 0 {
		t.Errorf("ones(0) = %d, want 0", got)
	}
	// Every nonzero element's bitmatrix is invertible, so it has at least w ones.
	for e := 1; e < 256; e++ {
		if got := OnesInBitmatrix(f, e); got < 8 {
			t.Errorf("ones(%d) = %d < w", e, got)
		}
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
