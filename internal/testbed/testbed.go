// Package testbed defines the hardware resource model of the paper's
// evaluation platform, used by the timing layer to replay checkpointing
// plans at paper scale: four machines with four A100 GPUs each, NVLink
// inside nodes, 100 Gbps between nodes, and a 5 Gbps aggregate uplink to
// remote persistent storage.
package testbed

import (
	"fmt"
	"time"
)

// Resources captures the bandwidths and rates of one evaluation platform.
// All rates are bytes per second.
type Resources struct {
	// PCIeBandwidth is the per-GPU device-to-host copy rate (step 1).
	PCIeBandwidth float64
	// NICBandwidth is the per-node inter-node bandwidth.
	NICBandwidth float64
	// EncodeRate is the per-node CPU thread-pool coding throughput
	// (bytes of region output per second); fast CRS implementations
	// sustain tens of Gbps per core group.
	EncodeRate float64
	// SerializeRate is the torch.save-style serialization throughput per
	// worker; DeserializeRate the reverse.
	SerializeRate   float64
	DeserializeRate float64
	// RemoteRate is the aggregate bandwidth to remote persistent storage,
	// shared by all nodes.
	RemoteRate float64
	// SmallBroadcastLatency is the constant step-2 cost of broadcasting
	// the non-tensor components (tens of kilobytes).
	SmallBroadcastLatency time.Duration
}

// Validate reports nonsensical configurations.
func (r Resources) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PCIeBandwidth", r.PCIeBandwidth},
		{"NICBandwidth", r.NICBandwidth},
		{"EncodeRate", r.EncodeRate},
		{"SerializeRate", r.SerializeRate},
		{"DeserializeRate", r.DeserializeRate},
		{"RemoteRate", r.RemoteRate},
	} {
		if f.v <= 0 {
			return fmt.Errorf("testbed: %s must be positive, got %f", f.name, f.v)
		}
	}
	if r.SmallBroadcastLatency < 0 {
		return fmt.Errorf("testbed: negative broadcast latency %v", r.SmallBroadcastLatency)
	}
	return nil
}

// GBps converts GB/s to bytes/second.
func GBps(v float64) float64 { return v * 1e9 }

// Gbps converts Gbit/s to bytes/second.
func Gbps(v float64) float64 { return v * 1e9 / 8 }

// Paper returns the A100 testbed of the paper's main evaluation:
// 100 Gbps interconnect, 5 Gbps aggregate remote storage bandwidth,
// PCIe 4.0 x16 DtoH copies, and a CRS thread pool sustaining ≈20 GB/s
// per node (the paper cites >40 Gbps single-threaded codecs, accelerated
// further by its thread pool).
func Paper() Resources {
	return Resources{
		PCIeBandwidth:         GBps(20),
		NICBandwidth:          Gbps(100),
		EncodeRate:            GBps(20),
		SerializeRate:         GBps(1.5),
		DeserializeRate:       GBps(2),
		RemoteRate:            Gbps(5),
		SmallBroadcastLatency: 2 * time.Millisecond,
	}
}

// V100 returns the scalability platform of Fig. 14 (V100 32 GB machines);
// same fabric, slightly slower host links.
func V100() Resources {
	r := Paper()
	r.PCIeBandwidth = GBps(12)
	return r
}
