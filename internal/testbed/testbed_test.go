package testbed

import "testing"

func TestConversions(t *testing.T) {
	if GBps(2) != 2e9 {
		t.Errorf("GBps(2) = %v", GBps(2))
	}
	if Gbps(8) != 1e9 {
		t.Errorf("Gbps(8) = %v", Gbps(8))
	}
}

func TestPaperResourcesValid(t *testing.T) {
	r := Paper()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The defining ratios of the testbed: inter-node bandwidth far above
	// remote storage; PCIe above NIC.
	if r.NICBandwidth/r.RemoteRate < 10 {
		t.Errorf("NIC/remote ratio %.1f, want >= 10 (100 Gbps vs 5 Gbps)", r.NICBandwidth/r.RemoteRate)
	}
	if r.PCIeBandwidth <= r.NICBandwidth {
		t.Error("PCIe DtoH should exceed per-node NIC bandwidth")
	}
}

func TestV100Variant(t *testing.T) {
	v := V100()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.PCIeBandwidth >= Paper().PCIeBandwidth {
		t.Error("V100 platform should have slower host links")
	}
}

func TestValidateCatchesZeroFields(t *testing.T) {
	base := Paper()
	mutations := []func(*Resources){
		func(r *Resources) { r.PCIeBandwidth = 0 },
		func(r *Resources) { r.NICBandwidth = -1 },
		func(r *Resources) { r.EncodeRate = 0 },
		func(r *Resources) { r.SerializeRate = 0 },
		func(r *Resources) { r.DeserializeRate = 0 },
		func(r *Resources) { r.RemoteRate = 0 },
		func(r *Resources) { r.SmallBroadcastLatency = -1 },
	}
	for i, mutate := range mutations {
		r := base
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}
