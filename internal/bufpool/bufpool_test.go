package bufpool

import (
	"sync"
	"testing"

	"eccheck/internal/obs"
)

func TestClassMath(t *testing.T) {
	cases := []struct {
		n, wantCap int
	}{
		{1, 256}, {255, 256}, {256, 256}, {257, 512},
		{4096, 4096}, {4097, 8192},
		{1 << 20, 1 << 20}, {1<<20 + 1, 2 << 20},
		{1 << 30, 1 << 30},
	}
	p := New()
	for _, c := range cases {
		buf := p.Get(c.n)
		if len(buf) != c.n || cap(buf) != c.wantCap {
			t.Errorf("Get(%d): len=%d cap=%d, want len=%d cap=%d",
				c.n, len(buf), cap(buf), c.n, c.wantCap)
		}
		p.Put(buf)
	}
}

func TestOversizeGet(t *testing.T) {
	p := New()
	n := 1<<30 + 1
	buf := p.Get(n)
	if len(buf) != n || cap(buf) != n {
		t.Fatalf("oversize Get: len=%d cap=%d, want exact %d", len(buf), cap(buf), n)
	}
	p.Put(buf) // must be dropped, not corrupt a class
	if got := p.Get(512); cap(got) != 512 {
		t.Fatalf("class corrupted by oversize Put: cap=%d", cap(got))
	}
}

func TestZeroAndNegativeGet(t *testing.T) {
	p := New()
	if buf := p.Get(0); buf != nil {
		t.Fatalf("Get(0) = %v, want nil", buf)
	}
	if buf := p.Get(-3); buf != nil {
		t.Fatalf("Get(-3) = %v, want nil", buf)
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	p := New()
	a := p.Get(1000)
	for i := range a {
		a[i] = 0xAB
	}
	p.Put(a)
	// The recycled buffer (when the same one comes back) must carry the
	// requested length even though the class is larger.
	b := p.Get(900)
	if len(b) != 900 || cap(b) != 1024 {
		t.Fatalf("recycled Get: len=%d cap=%d", len(b), cap(b))
	}
	z := p.GetZeroed(900)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed: byte %d = %#x, want 0", i, v)
		}
	}
}

func TestPutRejectsForeignCapacity(t *testing.T) {
	p := New()
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	p.Put(make([]byte, 1000)) // cap 1000 is not a class size
	p.Put(make([]byte, 100))  // below the smallest class
	if got := reg.Counter("bufpool_put_rejects_total").Value(); got != 2 {
		t.Fatalf("rejects = %d, want 2", got)
	}
	if got := reg.Counter("bufpool_puts_total").Value(); got != 0 {
		t.Fatalf("puts = %d, want 0", got)
	}
}

func TestMetrics(t *testing.T) {
	p := New()
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	a := p.Get(600) // miss
	p.Put(a)
	b := p.Get(600) // normally a hit (under -race, sync.Pool may drop Puts)
	_ = b
	hits := reg.Counter("bufpool_hits_total").Value()
	misses := reg.Counter("bufpool_misses_total").Value()
	if hits+misses != 2 || misses < 1 {
		t.Fatalf("hits=%d misses=%d, want first Get a miss and hits+misses=2", hits, misses)
	}
	if rec := reg.Counter("bufpool_recycled_bytes_total").Value(); rec != 600*hits {
		t.Fatalf("recycled bytes = %d, want %d", rec, 600*hits)
	}
	if puts := reg.Counter("bufpool_puts_total").Value(); puts != 1 {
		t.Fatalf("puts = %d, want 1", puts)
	}
}

// TestConcurrentGetPut hammers the pool from many goroutines under the race
// detector: each goroutine must observe exclusive ownership of every buffer
// it holds (a data race here means two holders shared one buffer).
func TestConcurrentGetPut(t *testing.T) {
	p := New()
	const goroutines = 8
	const rounds = 500
	sizes := []int{300, 4096, 5000, 64 << 10, 300}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			held := make([][]byte, 0, len(sizes))
			for r := 0; r < rounds; r++ {
				for _, n := range sizes {
					buf := p.Get(n)
					for i := 0; i < len(buf); i += 64 {
						buf[i] = byte(g)
					}
					held = append(held, buf)
				}
				for _, buf := range held {
					for i := 0; i < len(buf); i += 64 {
						if buf[i] != byte(g) {
							t.Errorf("goroutine %d: buffer shared with another holder", g)
							return
						}
					}
					p.Put(buf)
				}
				held = held[:0]
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkGetPut measures the steady-state pool round trip against the
// allocator (run with -benchmem: the pooled path must report 0 allocs/op).
func BenchmarkGetPut(b *testing.B) {
	p := New()
	p.Put(p.Get(1 << 20)) // prime the class
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := p.Get(1 << 20)
			buf[0] = byte(i)
			p.Put(buf)
		}
	})
	b.Run("make", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := make([]byte, 1<<20)
			buf[0] = byte(i)
		}
	})
}
