// Package bufpool provides a size-classed []byte pool for the checkpoint
// hot path. A steady-state save round moves the same buffer population every
// interval — packets, pipeline slices, XOR accumulators, transport copies,
// checksum frames — so recycling them through a pool removes effectively all
// large allocations from the round.
//
// Ownership rules (see DESIGN.md §"Buffer-pool ownership"):
//
//   - Get hands the caller exclusive ownership of a buffer with arbitrary
//     prior contents (use GetZeroed when zeroes matter).
//   - Put returns ownership to the pool. The caller must not touch the
//     buffer afterwards, and must Put a buffer at most once.
//   - A buffer that outlives its phase — anything reachable from a live
//     StateDict, a stored checkpoint entry, or a public API result — must
//     NOT be Put; let the garbage collector own it instead. Forgetting a
//     Put is always safe (the buffer is collected normally); a wrong Put
//     never is.
//
// Buffers are pooled per power-of-two size class. Put accepts only buffers
// whose capacity is exactly a class size, so foreign or resliced buffers are
// silently dropped rather than corrupting a class.
package bufpool

import (
	"math/bits"
	"sync"
	"unsafe"

	"eccheck/internal/obs"
	"eccheck/internal/obs/flight"
)

const (
	// minClassBits is the smallest pooled class (256 B): below this the
	// allocator is cheaper than pool bookkeeping.
	minClassBits = 8
	// maxClassBits is the largest pooled class (1 GiB), covering the 64 MB
	// paper-default pipeline buffers with headroom.
	maxClassBits = 30
	numClasses   = maxClassBits - minClassBits + 1
)

// Pool is a size-classed buffer pool. The zero value is usable; construct
// shared instances with New. All methods are safe for concurrent use.
type Pool struct {
	classes [numClasses]sync.Pool

	// Counters are nil (no-op) until SetMetrics installs a registry.
	hits     *obs.Counter
	misses   *obs.Counter
	puts     *obs.Counter
	rejects  *obs.Counter
	recycled *obs.Counter

	// Flight recorder for discard events; nil (no-op) until SetFlight.
	rec *flight.Recorder
}

// Default is the process-wide pool shared by the checkpoint engine, the
// transports and the cluster store, so a buffer released by one layer is
// reusable by every other.
var Default = New()

// New constructs an empty pool.
func New() *Pool { return &Pool{} }

// SetMetrics installs the pool's counters into the registry:
//
//	bufpool_hits_total            Gets served from a recycled buffer
//	bufpool_misses_total          Gets that had to allocate
//	bufpool_puts_total            buffers returned to the pool
//	bufpool_put_rejects_total     Puts dropped (foreign capacity or too large)
//	bufpool_recycled_bytes_total  bytes handed out from recycled buffers
//
// A nil registry detaches the counters.
func (p *Pool) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		p.hits, p.misses, p.puts, p.rejects, p.recycled = nil, nil, nil, nil, nil
		return
	}
	p.hits = reg.Counter("bufpool_hits_total")
	p.misses = reg.Counter("bufpool_misses_total")
	p.puts = reg.Counter("bufpool_puts_total")
	p.rejects = reg.Counter("bufpool_put_rejects_total")
	p.recycled = reg.Counter("bufpool_recycled_bytes_total")
}

// SetFlight installs a flight recorder that receives one event per
// rejected Put — a discarded buffer is recycled memory lost, so a burst
// of discards on the timeline flags an ownership bug or a foreign
// buffer leaking into the hot path. A nil recorder disables emission.
// Like SetMetrics, call before the pool sees concurrent traffic.
func (p *Pool) SetFlight(rec *flight.Recorder) { p.rec = rec }

// classIndex returns the size-class index for a buffer of n bytes, or -1
// when n is outside the pooled range (0 or above the largest class).
func classIndex(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// classSize returns the capacity of class i.
func classSize(i int) int { return 1 << (i + minClassBits) }

// Get returns a buffer of length n with arbitrary contents. Buffers longer
// than the largest class are plain allocations (Put will drop them).
func (p *Pool) Get(n int) []byte {
	ci := classIndex(n)
	if ci < 0 {
		if n <= 0 {
			return nil
		}
		p.misses.Inc()
		return make([]byte, n)
	}
	size := classSize(ci)
	if ptr, ok := p.classes[ci].Get().(unsafe.Pointer); ok && ptr != nil {
		p.hits.Inc()
		p.recycled.Add(int64(n))
		return unsafe.Slice((*byte)(ptr), size)[:n]
	}
	p.misses.Inc()
	return make([]byte, size)[:n]
}

// GetZeroed returns a zeroed buffer of length n.
func (p *Pool) GetZeroed(n int) []byte {
	buf := p.Get(n)
	clear(buf)
	return buf
}

// Put returns a buffer to its size class. Only buffers whose capacity is
// exactly a class size are accepted — typically exactly the buffers Get
// handed out; anything else is dropped for the garbage collector. The caller
// must not use the buffer after Put.
func (p *Pool) Put(buf []byte) {
	c := cap(buf)
	ci := classIndex(c)
	if ci < 0 || classSize(ci) != c {
		p.rejects.Inc()
		p.rec.PoolDiscard(int64(c))
		return
	}
	p.puts.Inc()
	// Store the base pointer (pointer-shaped, so boxing it into the pool's
	// interface slot does not allocate); Get reconstructs the full-class
	// slice from the class size.
	p.classes[ci].Put(unsafe.Pointer(unsafe.SliceData(buf[:c])))
}

// Get returns a buffer of length n from the Default pool.
func Get(n int) []byte { return Default.Get(n) }

// GetZeroed returns a zeroed buffer of length n from the Default pool.
func GetZeroed(n int) []byte { return Default.GetZeroed(n) }

// Put returns a buffer to the Default pool.
func Put(buf []byte) { Default.Put(buf) }
