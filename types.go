package eccheck

import (
	"io"

	"eccheck/internal/chaos"
	"eccheck/internal/core"
	"eccheck/internal/erasure"
	"eccheck/internal/model"
	"eccheck/internal/obs"
	"eccheck/internal/obs/flight"
	"eccheck/internal/parallel"
	"eccheck/internal/statedict"
	"eccheck/internal/tensor"
)

// The core data types are defined in internal packages and re-exported
// here as aliases, so the root package is the entire public surface.

// StateDict is an ordered checkpoint dictionary of non-tensor metadata and
// named tensors; it is what each worker checkpoints.
type StateDict = statedict.StateDict

// NewStateDict returns an empty state dict.
func NewStateDict() *StateDict { return statedict.New() }

// Value is a non-tensor metadata value.
type Value = statedict.Value

// Metadata value constructors.
var (
	// IntValue wraps an integer (iteration counters and the like).
	IntValue = statedict.Int
	// FloatValue wraps a float (learning rates and the like).
	FloatValue = statedict.Float
	// StringValue wraps a string (versions, names).
	StringValue = statedict.String
	// BoolValue wraps a boolean flag.
	BoolValue = statedict.Bool
	// BytesValue wraps an opaque blob (RNG state).
	BytesValue = statedict.Bytes
)

// Tensor is a dense, contiguously backed tensor.
type Tensor = tensor.Tensor

// DType is a tensor element type.
type DType = tensor.DType

// Supported tensor element types.
const (
	Float32  = tensor.Float32
	Float16  = tensor.Float16
	BFloat16 = tensor.BFloat16
	Int64    = tensor.Int64
	Int32    = tensor.Int32
	UInt8    = tensor.UInt8
)

// NewTensor allocates a zero-filled tensor.
func NewTensor(dtype DType, shape ...int) (*Tensor, error) {
	return tensor.New(dtype, shape...)
}

// TensorFromBytes wraps existing storage as a tensor (zero copy).
func TensorFromBytes(dtype DType, shape []int, data []byte) (*Tensor, error) {
	return tensor.FromBytes(dtype, shape, data)
}

// Topology describes the training cluster's hybrid-parallel layout.
type Topology = parallel.Topology

// NewTopology constructs a topology of nodes × gpusPerNode workers with
// the given tensor-parallel degree and pipeline stages.
func NewTopology(nodes, gpusPerNode, tpDegree, ppStages int) (*Topology, error) {
	return parallel.NewTopology(nodes, gpusPerNode, tpDegree, ppStages)
}

// ModelConfig describes a transformer model (see ModelZoo for the paper's
// Table I configurations).
type ModelConfig = model.Config

// ModelZoo returns the paper's Table I model configurations.
func ModelZoo() []ModelConfig { return model.TableI() }

// BuildOptions controls synthetic model-state construction.
type BuildOptions = model.BuildOptions

// NewBuildOptions returns defaults (full scale, optimizer state included).
func NewBuildOptions() BuildOptions { return model.NewBuildOptions() }

// BuildWorkerStateDict constructs one worker's sharded training state for
// a model under a topology — the synthetic stand-in for a live Megatron-LM
// worker's state_dict.
func BuildWorkerStateDict(cfg ModelConfig, topo *Topology, rank int, opt BuildOptions) (*StateDict, error) {
	return model.BuildWorkerStateDict(cfg, topo, rank, opt)
}

// BuildClusterStateDicts builds one state dict per world rank.
func BuildClusterStateDicts(cfg ModelConfig, topo *Topology, opt BuildOptions) ([]*StateDict, error) {
	return model.BuildClusterStateDicts(cfg, topo, opt)
}

// ChaosPlan describes the faults to inject into the transport: link
// latency and jitter, probabilistic send drops and errors, and scheduled
// node kills. A non-zero Seed makes the injection deterministic.
type ChaosPlan = chaos.Plan

// ChaosKill schedules one node crash within a ChaosPlan.
type ChaosKill = chaos.Kill

// ChaosStats counts the faults a chaos network has injected so far.
type ChaosStats = chaos.Stats

// ErrChaosKilled is returned by transport operations on a chaos-killed
// node (test with errors.Is).
var ErrChaosKilled = chaos.ErrKilled

// ChaosPreemption schedules a spot-style preemption notice within a
// ChaosPlan: after the node performs AfterSends transport sends, the
// notice fires (see System.OnPreemptionNotice) and a kill lands Notice
// later unless the node is revived first.
type ChaosPreemption = chaos.Preemption

// DrainReport describes the outcome of a graceful leave (RemoveNode /
// PreemptNode): whether the doomed node's checkpoint blobs reached their
// custodian before the kill, and what moved.
type DrainReport = core.DrainReport

// JoinReport describes the outcome of AddNode: whether the slot's blobs
// were restored from custody, whether placement was reseated around a
// crash-joined machine, and what moved.
type JoinReport = core.JoinReport

// Codec is the underlying systematic Cauchy Reed-Solomon code, exposed for
// applications that want to erasure-code arbitrary buffers.
type Codec = erasure.Code

// NewCodec constructs a (k, m) Cauchy Reed-Solomon code: k data chunks,
// m parity chunks, any k of k+m reconstruct.
func NewCodec(k, m int) (*Codec, error) { return erasure.New(k, m) }

// Snapshot is a point-in-time copy of all metrics a System has recorded.
// Render it with WriteText (Prometheus exposition format) or WriteJSON, or
// query single series with the Counter and Histogram lookup methods.
type Snapshot = obs.Snapshot

// MetricLabel is one key/value dimension of a metric series.
type MetricLabel = obs.Label

// Label constructs a MetricLabel for Snapshot lookups, e.g.
// snap.Histogram("save_phase_ns", Label("phase", "encode"), Label("node", "0")).
var Label = obs.L

// FlightRecorder is the bounded in-memory ring of protocol events a
// System records when Config.FlightEvents is positive: round begin/end,
// phase spans, per-peer transfers with byte counts, chaos injections and
// corruption-as-erasure recoveries. Obtain it with System.FlightRecorder.
type FlightRecorder = flight.Recorder

// FlightEvent is one recorded timeline event. Failed rounds carry their
// last events as SaveReport.Postmortem / LoadReport.Postmortem.
type FlightEvent = flight.Event

// FlightEventType discriminates FlightEvent kinds (round, phase, send,
// recv, chaos, corruption, ...).
type FlightEventType = flight.EventType

// WriteFlightTrace renders recorded events as Chrome trace_event JSON
// (the format Perfetto and chrome://tracing load). System.WriteTrace is
// the common entry point; this function renders an explicit event slice,
// e.g. a report's postmortem tail.
func WriteFlightTrace(w io.Writer, events []FlightEvent) error {
	return flight.WriteTrace(w, events)
}

// DebugServer is the live debug HTTP server started by System.ServeDebug,
// exposing /metrics, /trace and /debug/pprof.
type DebugServer = obs.DebugServer

// SaveHandle tracks an asynchronous save round from the moment SaveAsync
// returned (snapshot complete, training may resume) until its background
// drain commits or aborts. Wait blocks for the report; Done/Err poll
// without blocking; Stall reports the blocking portion.
type SaveHandle = core.SaveHandle

// Lifecycle errors (test with errors.Is).
var (
	// ErrSaveInFlight is returned by Save and SaveIncremental when another
	// save round is already running; SaveAsync waits instead.
	ErrSaveInFlight = core.ErrSaveInFlight
	// ErrClosed is returned by rounds started after Close.
	ErrClosed = core.ErrClosed
	// ErrSaveAborted marks work that Close cancelled mid-flight; Close
	// returns it (wrapped) and the aborted round's error chain carries it.
	ErrSaveAborted = core.ErrSaveAborted
)

// SavePhases lists the save-round phase names in pipeline order: offload,
// serialize, encode, xor, stage, p2p, barrier, promote, persist. Use it to
// render SaveReport.Phases as a stable-order table. "offload" (plus
// "serialize") is the blocking portion SaveAsync stalls training for;
// "stage" is drain-side local chunk staging memory work.
func SavePhases() []string { return core.SavePhases() }

// LoadPhases lists the recovery phase names in protocol order: scan,
// fetch, rebuild, smallsync, redistribute.
func LoadPhases() []string { return core.LoadPhases() }
