package eccheck

import (
	"context"
	"fmt"

	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/remotestore"
	"eccheck/internal/transport"
)

// GroupedConfig parameterises InitializeGrouped: group-based checkpointing
// applies ECCheck independently within fixed groups of machines, keeping
// per-node communication constant (m·s) as the cluster grows — the
// scalability scheme of the paper's §V-F and conclusion.
type GroupedConfig struct {
	// Nodes is the total machine count.
	Nodes int
	// GPUsPerNode is the worker count per machine.
	GPUsPerNode int
	// GroupSize is the machines per group (= K + M); it must divide Nodes.
	GroupSize int
	// K data nodes and M parity nodes per group; each group tolerates any
	// M concurrent failures.
	K, M int
	// BufferSize is the pipeline buffer (default 64 MB).
	BufferSize int
	// RemotePersistEvery persists every Nth save (0 default, <0 off).
	RemotePersistEvery int
	// RemoteBandwidth is the remote tier's aggregate bandwidth.
	RemoteBandwidth float64
	// DisableRemote turns the remote tier off.
	DisableRemote bool
}

// GroupedSystem is a running group-based deployment.
type GroupedSystem struct {
	grouped *core.Grouped
	net     transport.Network
	clus    *cluster.Cluster
	topo    *Topology
}

// GroupedSaveReport aggregates per-group save reports.
type GroupedSaveReport = core.GroupedSaveReport

// GroupedLoadReport aggregates per-group recoveries.
type GroupedLoadReport = core.GroupedLoadReport

// InitializeGrouped builds one ECCheck instance per machine group over a
// shared cluster and network.
func InitializeGrouped(cfg GroupedConfig) (*GroupedSystem, error) {
	if cfg.GroupSize <= 0 {
		return nil, fmt.Errorf("eccheck: group size must be positive, got %d", cfg.GroupSize)
	}
	topo, err := NewTopology(cfg.Nodes, cfg.GPUsPerNode, cfg.GPUsPerNode, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	net, err := transport.NewMemory(cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	clus, err := cluster.New(cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		_ = net.Close()
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	var remote *remotestore.Store
	if !cfg.DisableRemote {
		rate := cfg.RemoteBandwidth
		if rate == 0 {
			rate = 5e9 / 8
		}
		remote, err = remotestore.New(rate)
		if err != nil {
			_ = net.Close()
			return nil, fmt.Errorf("eccheck: %w", err)
		}
	}
	grouped, err := core.NewGrouped(core.GroupedConfig{
		Topo:               topo,
		GroupSize:          cfg.GroupSize,
		K:                  cfg.K,
		M:                  cfg.M,
		BufferSize:         cfg.BufferSize,
		RemotePersistEvery: cfg.RemotePersistEvery,
	}, net, clus, remote)
	if err != nil {
		_ = net.Close()
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	return &GroupedSystem{grouped: grouped, net: net, clus: clus, topo: topo}, nil
}

// Close releases all resources.
func (s *GroupedSystem) Close() error {
	s.grouped.Close()
	return s.net.Close()
}

// Topology returns the full-cluster topology.
func (s *GroupedSystem) Topology() *Topology { return s.topo }

// NumGroups returns the group count.
func (s *GroupedSystem) NumGroups() int { return s.grouped.NumGroups() }

// GroupOfNode returns the group a machine belongs to.
func (s *GroupedSystem) GroupOfNode(node int) int { return s.grouped.GroupOfNode(node) }

// Save checkpoints all groups concurrently.
func (s *GroupedSystem) Save(ctx context.Context, dicts []*StateDict) (*GroupedSaveReport, error) {
	return s.grouped.Save(ctx, dicts)
}

// Load recovers all groups concurrently. Any group with more than M lost
// chunks fails the recovery.
func (s *GroupedSystem) Load(ctx context.Context) ([]*StateDict, *GroupedLoadReport, error) {
	return s.grouped.Load(ctx)
}

// FailNode destroys a machine's volatile host memory.
func (s *GroupedSystem) FailNode(node int) error { return s.clus.Fail(node) }

// ReplaceNode brings a failed machine back empty.
func (s *GroupedSystem) ReplaceNode(node int) error { return s.clus.Replace(node) }
