// Package eccheck is an erasure-coded in-memory checkpointing system for
// distributed DNN training, reproducing "ECCheck: Enhancing In-Memory
// Checkpoint with Erasure Coding in Distributed DNN Training" (ICDCS 2025).
//
// Distributed training jobs checkpoint their sharded state dicts into the
// host memory of the training nodes themselves, protected by a systematic
// Cauchy Reed-Solomon code: the n nodes are split into k data nodes and m
// parity nodes, and any m concurrent machine failures are survivable — at
// the same memory redundancy where replication-based in-memory
// checkpointing (GEMINI-style) tolerates strictly fewer failure patterns.
//
// The package exposes the paper's three-call API:
//
//	sys, err := eccheck.Initialize(eccheck.Config{
//	    Nodes: 4, GPUsPerNode: 4, TPDegree: 4, PPStages: 4, K: 2, M: 2,
//	})
//	...
//	report, err := sys.Save(ctx, dicts)   // eccheck.save
//	...
//	dicts, lrep, err := sys.Load(ctx)     // eccheck.load after failures
//
// # The save protocol
//
// Save runs the serialization-free encoding protocol in five steps:
//
//  1. Decompose & offload. Each worker's state dict splits into non-tensor
//     metadata, tensor keys, and contiguous tensor payloads; the payloads
//     are copied into fixed-size host-memory packets (the DtoH offload —
//     the only step training waits for). Nothing large is ever serialized.
//  2. Broadcast. The tiny metadata and key components are broadcast so
//     every node can reassemble any worker's dict at recovery time.
//  3. Encode, reduce, place. Packets stream through pipelined buffers:
//     each worker scalar-multiplies its packet by its Cauchy generator
//     coefficients, XOR reductions across reduction groups assemble parity
//     packets on optimally chosen target workers, and P2P transfers place
//     finished data and parity chunks on their machines — fully
//     asynchronous behind training.
//  4. Commit. Every blob lands under a staged key during the round; only
//     after the all-nodes barrier is staging promoted to final, manifest
//     last, so an aborted round never damages the committed checkpoint.
//  5. Persist. Every Nth version (Config.RemotePersistEvery) additionally
//     persists to the bandwidth-limited remote tier against catastrophes
//     beyond m machines.
//
// Load runs the matching recovery workflows — pure redistribution when all
// data chunks survive, distributed decode otherwise — and then rebuilds
// the lost chunks so the full fault-tolerance capacity is restored.
//
// # Asynchronous checkpointing
//
// SaveAsync splits the round at the paper's stall boundary: it blocks only
// through step 1 (the snapshot — decompose and DtoH offload into pooled
// host staging buffers) and returns a SaveHandle while steps 2-5 drain on
// background goroutines. Training resumes immediately; the previous
// checkpoint stays committed and loadable until the drain passes the
// commit barrier, so a crash mid-drain degrades to the old version:
//
//	h, err := sys.SaveAsync(ctx, dicts)   // blocks ~offload time only
//	// ... training continues; sys.Version() still reports the old version
//	report, err := h.Wait(ctx)            // or select on h.Done()
//	fmt.Println(report.StallNs, report.OverlapNs)  // stall vs overlapped drain
//
// A second save while a drain is in flight waits its turn (SaveAsync) or
// fails fast with ErrSaveInFlight (Save, SaveIncremental). Close aborts
// any in-flight drain and reports the thrown-away work by wrapping
// ErrSaveAborted.
//
// # Streaming scale-out
//
// Step 3 advances per buffer window, not per phase: encode, XOR
// reduction and P2P placement for window i+1 overlap the commit of
// window i. Two Config knobs govern the overlap at scale.
// Config.PipelineDepth bounds how many windows a node holds in flight
// (1 recovers the phase-coarse protocol; the bound also caps the pooled
// staging footprint at PipelineDepth × BufferSize per node), and
// Config.GroupFanIn bounds each XOR reduction's aggregation arity, so
// partials fold through a deterministic tree instead of concentrating
// k−1 streams on the target's machine. For clusters beyond tens of
// nodes, InitializeGrouped applies the protocol independently within
// fixed-size node groups, keeping per-node cost constant as the cluster
// grows. The commit barrier attributes synchronization skew: each
// SaveReport names the round's slowest machine (StragglerNode,
// StragglerLag), and finished nodes' waiting time lands in their own
// "straggle" phase lane so every per-node partition still sums to the
// round wall.
//
// # Failure model
//
// The robustness layer covers the three failure classes an in-memory
// checkpoint meets in production. Machines crashing mid-round: Config.Chaos
// installs a deterministic fault-injection plan (link latency and jitter,
// probabilistic drops and errors, node kills scheduled by send count), and
// a kill destroys the victim's volatile host memory exactly like a machine
// crash; the staged commit guarantees the previous checkpoint stays
// loadable. Peers hanging instead of failing: Config.OpTimeout bounds every
// protocol Send/Recv. Silent host-memory corruption: every blob carries a
// checksum footer, and a mismatch at load time is folded into the erasure
// model — the chunk counts as missing and is rebuilt through the code
// (see System.CorruptChunk and VerifyIntegrity).
//
// # Elastic membership
//
// Preemptible machines announce a deadline before they die. PreemptNode
// drains the doomed machine's coded blobs to a custodian node before the
// kill lands; AddNode restores them verbatim onto the replacement, so the
// next Load runs with zero erasure rebuilds and FaultTolerance returns to
// m without re-encoding. A drain that loses its race against the deadline
// is reported (with a flight-recorder postmortem), not errored, and
// recovery falls back to the crash path: AddNode re-runs sweep-line
// placement avoiding the empty machine, migrates only the chunks the new
// plan moved, and leaves exactly one chunk for the next Load to rebuild.
// RemoveNode is the graceful leave; OnPreemptionNotice surfaces injected
// (Config.Chaos) preemption notices to the training loop. All membership
// mutations — including ReplaceNode — are fenced behind the save slot, so
// they serialize against in-flight SaveAsync drains.
//
// # Observability
//
// Every System carries an always-on, dependency-free metric registry.
// System.Metrics returns a Snapshot of all counters and histograms the
// system has recorded — per-phase save/load timings
// (save_phase_ns{phase,node}), transport traffic per (node, peer) pair,
// injected chaos faults by kind, host-memory and remote-tier volumes —
// renderable as Prometheus exposition text (Snapshot.WriteText) or JSON
// (Snapshot.WriteJSON). Each SaveReport and LoadReport additionally breaks
// its round's wall time into an exclusive phase partition (SaveReport.Phases
// over SavePhases: offload, serialize, encode, xor, stage, p2p, barrier,
// promote, persist) whose durations sum to the round's elapsed time. Recording is
// lock-free atomic arithmetic, so the instrumentation stays on
// unconditionally.
//
// The library also ships the complete evaluation harness of the paper —
// workload models, the three baselines, the reliability analysis, and one
// benchmark per table and figure; see the README and EXPERIMENTS.md.
package eccheck
