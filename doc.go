// Package eccheck is an erasure-coded in-memory checkpointing system for
// distributed DNN training, reproducing "ECCheck: Enhancing In-Memory
// Checkpoint with Erasure Coding in Distributed DNN Training" (ICDCS 2025).
//
// Distributed training jobs checkpoint their sharded state dicts into the
// host memory of the training nodes themselves, protected by a systematic
// Cauchy Reed-Solomon code: the n nodes are split into k data nodes and m
// parity nodes, and any m concurrent machine failures are survivable — at
// the same memory redundancy where replication-based in-memory
// checkpointing (GEMINI-style) tolerates strictly fewer failure patterns.
//
// The package exposes the paper's three-call API:
//
//	sys, err := eccheck.Initialize(eccheck.Config{
//	    Nodes: 4, GPUsPerNode: 4, TPDegree: 4, PPStages: 4, K: 2, M: 2,
//	})
//	...
//	report, err := sys.Save(ctx, dicts)   // eccheck.save
//	...
//	dicts, lrep, err := sys.Load(ctx)     // eccheck.load after failures
//
// Save runs the serialization-free encoding protocol: each worker's state
// dict is decomposed into non-tensor metadata, tensor keys, and contiguous
// tensor payloads; the payloads become erasure-code packets consumed in
// place, streamed through a pipelined encode / XOR-reduce / P2P placement
// protocol. Load runs the matching recovery workflows (pure replacement
// when all data chunks survive, distributed decode otherwise) and restores
// full fault tolerance.
//
// The library also ships the complete evaluation harness of the paper —
// workload models, the three baselines, the reliability analysis, and one
// benchmark per table and figure; see the README and EXPERIMENTS.md.
package eccheck
