package eccheck_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"eccheck"
	"eccheck/internal/obs/flight"
)

// elasticSystem wires a chaos-enabled, flight-recorded system for the
// membership tests. Incremental toggles the per-node packet caches so
// custody transfers cover them too.
func elasticSystem(t *testing.T, incremental bool, plan *eccheck.ChaosPlan) (*eccheck.System, []*eccheck.StateDict) {
	t.Helper()
	if plan == nil {
		plan = &eccheck.ChaosPlan{Seed: 11}
	}
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes:        4,
		GPUsPerNode:  2,
		TPDegree:     2,
		PPStages:     4,
		K:            2,
		M:            2,
		BufferSize:   16 << 10,
		Incremental:  incremental,
		Chaos:        plan,
		OpTimeout:    5 * time.Second,
		FlightEvents: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 42
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return sys, dicts
}

func corruptionEvents(sys *eccheck.System) int {
	n := 0
	for _, ev := range sys.FlightRecorder().Snapshot() {
		if ev.Type == flight.EvCorruption {
			n++
		}
	}
	return n
}

func membershipEvents(sys *eccheck.System, op string) int {
	n := 0
	for _, ev := range sys.FlightRecorder().Snapshot() {
		if ev.Type == flight.EvMembership && ev.Op == op {
			n++
		}
	}
	return n
}

// The headline guarantee: a preemption with sufficient notice drains the
// doomed node's blobs to a custodian, the joiner gets them back verbatim,
// and the next Load is a pure replacement round — ZERO erasure rebuilds,
// zero corruption-as-erasure events, full fault tolerance restored the
// moment AddNode returns.
func TestPreemptWithNoticeLoadsWithZeroRebuilds(t *testing.T) {
	sys, dicts := elasticSystem(t, true, nil)
	ctx := context.Background()

	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.DataNodes()[0]

	rep, err := sys.PreemptNode(ctx, victim, 30*time.Second)
	if err != nil {
		t.Fatalf("PreemptNode: %v", err)
	}
	if !rep.Completed {
		t.Fatalf("drain not completed with generous notice: %+v", rep)
	}
	if rep.Custodian < 0 || rep.Custodian == victim {
		t.Fatalf("bad custodian %d", rep.Custodian)
	}
	if rep.Blobs == 0 || rep.BytesMoved == 0 {
		t.Fatalf("drain moved nothing: %+v", rep)
	}
	if sys.FaultTolerance() >= 2 {
		t.Fatalf("FaultTolerance = %d with a dead slot", sys.FaultTolerance())
	}
	if got := membershipEvents(sys, "drain"); got != 1 {
		t.Fatalf("drain events = %d, want 1", got)
	}

	join, err := sys.AddNode(ctx, victim)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if !join.Restored || join.Custodian != rep.Custodian {
		t.Fatalf("join did not restore from custody: %+v", join)
	}
	if join.Reseated {
		t.Fatalf("custody restore must not reseat placement: %+v", join)
	}
	if join.Blobs != rep.Blobs || join.BytesMoved != rep.BytesMoved {
		t.Fatalf("restore moved %d blobs/%d bytes, drain moved %d/%d",
			join.Blobs, join.BytesMoved, rep.Blobs, rep.BytesMoved)
	}
	// Full tolerance is back BEFORE any Load: the blobs are in place.
	if sys.FaultTolerance() != 2 {
		t.Fatalf("FaultTolerance = %d after restore, want 2", sys.FaultTolerance())
	}

	got, lrep, err := sys.Load(ctx)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(lrep.MissingChunks) != 0 {
		t.Fatalf("Load rebuilt chunks %v after a completed drain", lrep.MissingChunks)
	}
	if lrep.Workflow != "replacement" {
		t.Fatalf("workflow = %q, want replacement", lrep.Workflow)
	}
	if n := corruptionEvents(sys); n != 0 {
		t.Fatalf("%d corruption-as-erasure events after a clean drain", n)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Fatalf("rank %d: recovered dict differs", rank)
		}
	}
	// The custody transfer carried the incremental packet caches too, so
	// the next SaveIncremental must not fall back to a full save.
	irep, err := sys.SaveIncremental(ctx, dicts)
	if err != nil {
		t.Fatalf("SaveIncremental: %v", err)
	}
	if irep.Full {
		t.Fatal("SaveIncremental fell back to a full save: custody lost the packet caches")
	}
}

// Zero notice is a plain crash: nothing drains, the join reseats
// placement around the empty machine (demoting it to parity), and the
// next Load decodes exactly the one lost chunk.
func TestZeroNoticeRecoversViaRebuild(t *testing.T) {
	sys, dicts := elasticSystem(t, false, nil)
	ctx := context.Background()

	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.DataNodes()[0]
	rep, err := sys.PreemptNode(ctx, victim, 0)
	if err != nil {
		t.Fatalf("PreemptNode(0): %v", err)
	}
	if rep.Completed {
		t.Fatalf("zero-notice drain reported completed: %+v", rep)
	}

	join, err := sys.AddNode(ctx, victim)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if join.Restored {
		t.Fatal("nothing was drained; join cannot restore")
	}
	if !join.Reseated || len(join.Moves) == 0 {
		t.Fatalf("crash join of a data node must reseat placement: %+v", join)
	}
	// The joiner was demoted: it no longer holds a data chunk.
	for _, n := range sys.DataNodes() {
		if n == victim {
			t.Fatalf("joiner %d still on data duty after reseat: %v", victim, sys.DataNodes())
		}
	}
	if sys.FaultTolerance() >= 2 {
		t.Fatalf("FaultTolerance = %d before the rebuild, want < 2", sys.FaultTolerance())
	}

	got, lrep, err := sys.Load(ctx)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(lrep.MissingChunks) != 1 {
		t.Fatalf("MissingChunks = %v, want exactly the lost chunk", lrep.MissingChunks)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Fatalf("rank %d: recovered dict differs", rank)
		}
	}
	if sys.FaultTolerance() != 2 {
		t.Fatalf("FaultTolerance = %d after rebuild, want 2", sys.FaultTolerance())
	}
}

// A notice too short for the transfer: the deadline kills the node
// mid-drain, the partial custody copy is discarded, and recovery falls
// back to the erasure rebuild — the crash-only path, now with a
// postmortem attached to the drain report.
func TestNoticeExpiresMidDrainDegradesToRebuild(t *testing.T) {
	// 3ms per send × ~40 blob/flag sends for the drained node's blob set
	// dwarfs the 25ms notice, so the kill always lands mid-transfer.
	sys, dicts := elasticSystem(t, false, &eccheck.ChaosPlan{Seed: 13, Latency: 3 * time.Millisecond})
	ctx := context.Background()

	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.DataNodes()[0]
	rep, err := sys.PreemptNode(ctx, victim, 25*time.Millisecond)
	if err != nil {
		t.Fatalf("PreemptNode: %v", err)
	}
	if rep.Completed {
		t.Fatalf("drain completed despite an impossible deadline: %+v", rep)
	}
	if rep.Reason == "" {
		t.Fatal("degraded drain carries no reason")
	}
	if got := membershipEvents(sys, "drain_failed"); got != 1 {
		t.Fatalf("drain_failed events = %d, want 1", got)
	}

	join, err := sys.AddNode(ctx, victim)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if join.Restored {
		t.Fatal("a failed drain must not leave restorable custody")
	}
	got, lrep, err := sys.Load(ctx)
	if err != nil {
		t.Fatalf("Load after degraded drain: %v", err)
	}
	if len(lrep.MissingChunks) == 0 {
		t.Fatal("degraded drain should force a rebuild")
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Fatalf("rank %d: recovered dict differs", rank)
		}
	}
}

// RemoveNode is the unbounded graceful leave; a parity slot drains and
// restores just like a data slot, with no reseat needed on rejoin.
func TestRemoveAndAddParityNode(t *testing.T) {
	sys, dicts := elasticSystem(t, false, nil)
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.ParityNodes()[0]
	rep, err := sys.RemoveNode(ctx, victim)
	if err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if !rep.Completed {
		t.Fatalf("unbounded drain failed: %+v", rep)
	}
	join, err := sys.AddNode(ctx, victim)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if !join.Restored || join.Reseated {
		t.Fatalf("parity rejoin: %+v", join)
	}
	if sys.FaultTolerance() != 2 {
		t.Fatalf("FaultTolerance = %d, want 2", sys.FaultTolerance())
	}
	if _, lrep, err := sys.Load(ctx); err != nil || len(lrep.MissingChunks) != 0 {
		t.Fatalf("Load: %v, missing %v", err, lrep.MissingChunks)
	}
}

// ReplaceNode is fenced behind the save slot: when it returns during an
// async drain, that drain has fully finished (committed or aborted) — the
// membership change can never interleave with a round.
func TestReplaceNodeFencedBehindAsyncSave(t *testing.T) {
	// Link latency stretches the async drain to a fat window an unfenced
	// ReplaceNode would land inside.
	sys, dicts := elasticSystem(t, false, &eccheck.ChaosPlan{Seed: 29, Latency: 2 * time.Millisecond})
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	h, err := sys.SaveAsync(ctx, dicts)
	if err != nil {
		t.Fatal(err)
	}
	victim := sys.ParityNodes()[1]
	if err := sys.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := sys.ReplaceNode(victim); err != nil {
		t.Fatalf("ReplaceNode: %v", err)
	}
	// complete() runs a few instructions after the drain frees the slot;
	// give the drain goroutine one beat, but no longer — an unfenced
	// ReplaceNode would land mid-drain with hundreds of ms still to go.
	select {
	case <-h.Done():
	case <-time.After(20 * time.Millisecond):
		t.Fatal("ReplaceNode returned while the async drain was still in flight")
	}
	// Whatever the drain's fate (commit, or abort because the victim died
	// mid-round), the system must still recover.
	if _, _, err := sys.Load(ctx); err != nil {
		t.Fatalf("Load after fenced replace: %v", err)
	}
}

// Membership operations racing saves, loads and each other must never
// deadlock or corrupt state; individual operations may fail (a save
// cannot run with a dead node) but the system always recovers once the
// churn stops. Run under -race via `make chaos-soak`.
func TestChaosSoakMembershipChurn(t *testing.T) {
	sys, dicts := elasticSystem(t, false, &eccheck.ChaosPlan{Seed: 17})
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}

	rounds := 12
	if testing.Short() {
		rounds = 5
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Background saver/loader: hammer the round API while membership
	// churns underneath. Errors are expected (dead nodes, fenced slots);
	// panics, races and deadlocks are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = sys.Save(ctx, dicts)
			_, _, _ = sys.Load(ctx)
		}
	}()

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < rounds; i++ {
		victim := rng.Intn(4)
		notice := time.Duration(rng.Intn(40)) * time.Millisecond
		octx, cancel := context.WithTimeout(ctx, 10*time.Second)
		if _, err := sys.PreemptNode(octx, victim, notice); err != nil {
			// Busy slot (already draining/dead) — fine under churn.
			cancel()
			continue
		}
		_, _ = sys.AddNode(octx, victim)
		cancel()
	}
	close(stop)
	wg.Wait()

	// Quiesce: refill any slot the churn left dead, then the system must
	// save and recover cleanly.
	alive := map[int]bool{}
	for _, n := range sys.AliveNodes() {
		alive[n] = true
	}
	for n := 0; n < 4; n++ {
		if !alive[n] {
			if _, err := sys.AddNode(ctx, n); err != nil {
				t.Fatalf("AddNode(%d) during quiesce: %v", n, err)
			}
		}
	}
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatalf("Save after churn: %v", err)
	}
	got, _, err := sys.Load(ctx)
	if err != nil {
		t.Fatalf("Load after churn: %v", err)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Fatalf("rank %d: dict differs after churn", rank)
		}
	}
	if sys.FaultTolerance() != 2 {
		t.Fatalf("FaultTolerance = %d after quiesce, want 2", sys.FaultTolerance())
	}
}

// Close racing an in-flight preemption drain must abort it promptly and
// leave no goroutine wedged on the save slot.
func TestCloseAbortsInFlightDrain(t *testing.T) {
	sys, dicts := elasticSystem(t, false, &eccheck.ChaosPlan{Seed: 19, Latency: 2 * time.Millisecond})
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.DataNodes()[1]
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = sys.PreemptNode(ctx, victim, 30*time.Second)
	}()
	// Let the drain start shipping, then tear the system down.
	time.Sleep(5 * time.Millisecond)
	_ = sys.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("PreemptNode wedged across Close")
	}
}
