package eccheck

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"eccheck/internal/chaos"
	"eccheck/internal/cluster"
	"eccheck/internal/core"
	"eccheck/internal/obs"
	"eccheck/internal/obs/flight"
	"eccheck/internal/obs/health"
	"eccheck/internal/remotestore"
	"eccheck/internal/transport"
)

// TransportKind selects how nodes exchange checkpoint bytes.
type TransportKind int

// Supported transports.
const (
	// TransportMemory runs all nodes in-process over channels (the
	// default; used by simulations and tests).
	TransportMemory TransportKind = iota + 1
	// TransportTCP runs every node behind a real TCP socket on loopback,
	// exercising the full network stack.
	TransportTCP
)

// Config parameterises Initialize.
type Config struct {
	// Nodes is the machine count n = K + M.
	Nodes int
	// GPUsPerNode is the worker count per machine.
	GPUsPerNode int
	// TPDegree and PPStages fix the hybrid-parallel layout (data
	// parallelism is inferred).
	TPDegree int
	PPStages int
	// K data nodes and M parity nodes; the system tolerates any M
	// concurrent machine failures.
	K, M int
	// BufferSize is the streaming window size (default 64 MB): each
	// worker's packet is encoded, reduced and placed one BufferSize window
	// at a time, so it is the granularity of pipeline overlap.
	BufferSize int
	// PipelineDepth bounds how many buffer windows a node may hold in
	// flight at once in the streaming save pipeline. 1 disables
	// cross-window overlap (the phase-coarse baseline: a window must fully
	// commit before the next one starts); 0 selects the default depth.
	PipelineDepth int
	// GroupFanIn bounds the XOR-reduction fan-in per machine: partial
	// accumulations aggregate over a GroupFanIn-ary tree of the
	// contributing machines instead of all k converging on one target, so
	// per-machine ingest stays flat as the cluster scales. 0 disables the
	// tree (every contributor forwards straight to the reduction target).
	GroupFanIn int
	// RemotePersistEvery persists every Nth checkpoint to remote storage;
	// 0 keeps the default (10), negative disables.
	RemotePersistEvery int
	// RemoteBandwidth is the aggregate remote-storage bandwidth in
	// bytes/second (default 5 Gbps). Set together with WithRemote.
	RemoteBandwidth float64
	// DisableRemote turns off the remote persistence tier entirely.
	DisableRemote bool
	// Incremental enables delta checkpointing: nodes cache their workers'
	// packets (one extra packet of host memory each) and SaveIncremental
	// ships only changed buffer slices, updating data and parity chunks in
	// place via the code's linearity.
	Incremental bool
	// Transport selects the node interconnect (default TransportMemory).
	Transport TransportKind
	// Chaos, when non-nil, wraps the transport in a fault-injection layer
	// driven by the plan: link latency/jitter, dropped or erroring sends,
	// and scheduled node kills. A killed node's volatile host memory is
	// destroyed at the instant its transport dies, exactly like a machine
	// crash. See also System.ScheduleNodeKill.
	Chaos *ChaosPlan
	// OpTimeout bounds every individual protocol Send/Recv, so a peer
	// crashing mid-save surfaces as a bounded error instead of a hang.
	// 0 selects the default (60s); negative disables deadlines.
	OpTimeout time.Duration
	// RestoreWorkers bounds the fan-out of the restore paths: the remote
	// rank fetch pool in LoadFromRemote and the per-stage worker pools of
	// LoadPartial and PrefetchNode. 0 selects the default (8); 1 is the
	// serial baseline the restore bench compares against.
	RestoreWorkers int
	// LoadBudget is the restore-latency SLO. It is observational, not a
	// hard deadline: a recovery that overruns still completes, but its
	// LoadReport comes back with DeadlineExceeded set, a postmortem event
	// tail attached (when the flight recorder is on), and the overrun
	// counted in load_budget_exceeded_total. 0 disables budgeting.
	LoadBudget time.Duration
	// FlightEvents, when positive, enables the flight recorder: a bounded
	// in-memory ring of the last FlightEvents protocol events (round
	// begin/end, phase spans, per-peer transfers, chaos injections,
	// corruption recoveries). Failed rounds attach their event tail to the
	// report as a postmortem; export the timeline with System.WriteTrace
	// or serve it live with System.ServeDebug. 0 (the default) disables
	// recording at zero cost on the save hot path.
	FlightEvents int
	// Logger receives structured logs (stdlib log/slog) of round
	// lifecycle, membership changes and chaos verdicts, with op/round/
	// node correlation attributes. Nil disables logging at zero cost on
	// the hot path.
	Logger *slog.Logger
	// WatchdogFactor arms the stuck-round watchdog: a live round whose
	// current phase exceeds this multiple of the phase's rolling p99 is
	// flagged in flight (EvStuck flight event, round_stuck_total counter,
	// a stuck health event, and a live postmortem tail) without waiting
	// for the round to fail. 0 disables the watchdog at zero cost; values
	// below 1 are rejected.
	WatchdogFactor float64
}

// System is a running ECCheck deployment: the engine plus the cluster,
// network and remote-store substrates it manages.
type System struct {
	ckpt     *core.Checkpointer
	net      transport.Network
	chaosNet *chaos.Network // non-nil when Config.Chaos is set
	clus     *cluster.Cluster
	remote   *remotestore.Store
	topo     *Topology
	metrics  *obs.Registry
	flight   *flight.Recorder // non-nil when Config.FlightEvents > 0
	health   *health.Tracker  // always non-nil: protection scoring is cheap

	// killTimers arms the preemption deadlines of non-chaos systems (under
	// chaos the chaos network owns the deadline). Guarded by timerMu.
	timerMu    sync.Mutex
	killTimers map[int]*time.Timer
}

// SaveReport summarises one checkpoint round.
type SaveReport = core.SaveReport

// LoadReport summarises one recovery.
type LoadReport = core.LoadReport

// Initialize validates the configuration, selects data and parity nodes
// (sweep-line maximum-overlap pairing), fixes the Cauchy Reed-Solomon
// encoding matrix and the communication strategy, and allocates the
// system. It is the paper's eccheck.initialize.
func Initialize(cfg Config) (*System, error) {
	topo, err := NewTopology(cfg.Nodes, cfg.GPUsPerNode, cfg.TPDegree, cfg.PPStages)
	if err != nil {
		return nil, fmt.Errorf("eccheck: %w", err)
	}

	// Every system carries a metrics registry; recording is lock-free
	// atomic adds, so it stays on unconditionally.
	reg := obs.NewRegistry()

	var net transport.Network
	switch cfg.Transport {
	case 0, TransportMemory:
		net, err = transport.NewMemory(cfg.Nodes)
	case TransportTCP:
		net, err = transport.NewTCPLoopback(cfg.Nodes)
	default:
		return nil, fmt.Errorf("eccheck: unknown transport %d", cfg.Transport)
	}
	if err != nil {
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	// The base transport records its own internals (TCP dial retries);
	// wire it before any wrapper hides the concrete type.
	if ms, ok := net.(transport.MetricsSetter); ok {
		ms.SetMetrics(reg)
	}

	var chaosNet *chaos.Network
	if cfg.Chaos != nil {
		chaosNet, err = chaos.Wrap(net, *cfg.Chaos)
		if err != nil {
			_ = net.Close()
			return nil, fmt.Errorf("eccheck: %w", err)
		}
		chaosNet.SetMetrics(reg)
		net = chaosNet
	}
	var rec *flight.Recorder
	if cfg.FlightEvents > 0 {
		rec = flight.New(cfg.FlightEvents)
		// The flight wrapper times every send/recv at the wire. It sits
		// outside chaos so injected latency is part of each span, and
		// forwards the recorder down to the chaos layer (FlightSetter) so
		// kill/drop/error verdicts land in the same timeline.
		net = transport.WithFlight(net, rec)
	}
	// Outermost wrapper counts every protocol send/recv per (node, peer);
	// under chaos it observes what the protocol attempted, while the chaos
	// counters record what the fault plan did to it.
	net = transport.WithMetrics(net, reg)

	clus, err := cluster.New(cfg.Nodes, cfg.GPUsPerNode)
	if err != nil {
		_ = net.Close()
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	clus.SetMetrics(reg)

	var remote *remotestore.Store
	if !cfg.DisableRemote {
		rate := cfg.RemoteBandwidth
		if rate == 0 {
			rate = 5e9 / 8 // the paper's 5 Gbps aggregate
		}
		remote, err = remotestore.New(rate)
		if err != nil {
			_ = net.Close()
			return nil, fmt.Errorf("eccheck: %w", err)
		}
		remote.SetMetrics(reg)
		remote.SetFlight(rec)
	}

	persistEvery := cfg.RemotePersistEvery
	if persistEvery < 0 {
		persistEvery = 0
		remote = nil
	}
	// The health tracker exists before the engine it probes (the engine's
	// round callbacks need it at construction); SetProbe below closes the
	// cycle once the engine and cluster are live.
	tracker := health.NewTracker(nil)
	ckpt, err := core.New(core.Config{
		Topo:               topo,
		K:                  cfg.K,
		M:                  cfg.M,
		BufferSize:         cfg.BufferSize,
		PipelineDepth:      cfg.PipelineDepth,
		GroupFanIn:         cfg.GroupFanIn,
		RemotePersistEvery: persistEvery,
		IncrementalCache:   cfg.Incremental,
		OpTimeout:          cfg.OpTimeout,
		RestoreWorkers:     cfg.RestoreWorkers,
		LoadBudget:         cfg.LoadBudget,
		Metrics:            reg,
		Flight:             rec,
		Health:             tracker,
		Logger:             cfg.Logger,
		WatchdogFactor:     cfg.WatchdogFactor,
	}, net, clus, remote)
	if err != nil {
		_ = net.Close()
		return nil, fmt.Errorf("eccheck: %w", err)
	}
	tracker.SetProbe(func() health.Probe {
		p := health.Probe{
			Version:       ckpt.Version(),
			M:             ckpt.Code().M(),
			DegradedSlots: ckpt.DegradedSlots(),
			DeadNodes:     clus.FailedNodes(),
		}
		for node := 0; node < clus.Nodes(); node++ {
			if clus.Draining(node) {
				p.DrainingNodes = append(p.DrainingNodes, node)
			}
		}
		return p
	})
	if chaosNet != nil {
		// A chaos kill models a whole-machine crash: the node's transport
		// dies and its volatile host memory — checkpoint chunks included —
		// is destroyed in the same instant. The kill is a membership
		// transition, so the protection score is recomputed on the spot.
		chaosNet.SetOnKill(func(node int) {
			_ = clus.Fail(node)
			tracker.Recompute()
		})
		chaosNet.SetLogger(cfg.Logger)
	}
	return &System{ckpt: ckpt, net: net, chaosNet: chaosNet, clus: clus, remote: remote,
		topo: topo, metrics: reg, flight: rec, health: tracker,
		killTimers: make(map[int]*time.Timer)}, nil
}

// RoundHooks observes checkpoint-round lifecycle transitions: RoundStart
// when a save or load round enters flight, RoundEnd exactly once when it
// leaves (committed or aborted), including SaveAsync drains that finish on
// background goroutines long after SaveAsync returned. The eccheckd job
// registry uses them to account rounds per job; see core.RoundHooks for
// the callback contract.
type RoundHooks = core.RoundHooks

// SetRoundHooks installs (or clears, with the zero value) the lifecycle
// hooks. Callbacks run on protocol goroutines and must not call back into
// the System.
func (s *System) SetRoundHooks(h RoundHooks) { s.ckpt.SetRoundHooks(h) }

// Metrics returns a point-in-time snapshot of every counter and histogram
// the system has recorded: per-phase save/load timings
// (save_phase_ns{phase,node}), transport traffic per (node, peer) pair,
// injected chaos faults by kind, host-memory and remote-tier volumes.
// Render it with Snapshot.WriteText (Prometheus exposition format) or
// Snapshot.WriteJSON, or query single series with Snapshot.Counter and
// Snapshot.Histogram.
func (s *System) Metrics() Snapshot { return s.metrics.Snapshot() }

// FlightRecorder returns the event timeline ring, or nil when
// Config.FlightEvents was 0. Snapshot/Drain it directly, or use
// WriteTrace / ServeDebug for the rendered forms.
func (s *System) FlightRecorder() *FlightRecorder { return s.flight }

// HealthTracker is the event-driven protection scorer of one system.
type HealthTracker = health.Tracker

// HealthReport is the collapsed protection score: level, redundancy
// margin, staleness, rolling success rates and reason strings.
type HealthReport = health.Report

// HealthLevel classifies protection, ordered healthy to lost.
type HealthLevel = health.Level

// HealthEvent is one record on the protection timeline (round
// lifecycle, health transition, or stuck-round flag).
type HealthEvent = health.Event

// Protection levels (see health.Level for the exact semantics).
const (
	// HealthOK: the full parity margin m stands.
	HealthOK = health.OK
	// HealthDegraded: recoverable, but part of the margin is consumed.
	HealthDegraded = health.Degraded
	// HealthAtRisk: zero margin — one more loss is unrecoverable.
	HealthAtRisk = health.AtRisk
	// HealthUnprotected: the in-memory checkpoint is already gone (or
	// nothing has committed yet).
	HealthUnprotected = health.Unprotected
)

// Health returns the system's current protection score. It is
// recomputed on membership, round and chaos transitions — never polled —
// so reading it is cheap.
func (s *System) Health() HealthReport { return s.health.Report() }

// HealthTracker exposes the underlying tracker so a control plane can
// subscribe to its event stream (SetSink) or force a recomputation. The
// tracker is always non-nil.
func (s *System) HealthTracker() *HealthTracker { return s.health }

// WatchdogPostmortem returns the flight-recorder tail captured at the
// most recent stuck-round flag — a live postmortem of a round that had
// not (yet) failed. Nil when Config.WatchdogFactor is 0, the flight
// recorder is off, or nothing has been flagged.
func (s *System) WatchdogPostmortem() []FlightEvent { return s.ckpt.WatchdogPostmortem() }

// WriteTrace renders the flight recorder's current contents as Chrome
// trace_event JSON — load the output in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each node is a process, each phase/event lane a
// thread track, and P2P transfers carry flow arrows from sender to
// receiver. The ring is not drained: repeated calls re-export the same
// window. Fails when the recorder is disabled.
func (s *System) WriteTrace(w io.Writer) error {
	if s.flight == nil {
		return fmt.Errorf("eccheck: flight recorder not enabled (set Config.FlightEvents)")
	}
	return flight.WriteTrace(w, s.flight.Snapshot())
}

// ServeDebug starts a debug HTTP server on addr (e.g. "localhost:6060")
// exposing /metrics (Prometheus exposition), /metrics.json, /trace (the
// flight recorder as Chrome trace JSON; drains the ring unless ?keep=1)
// and /debug/pprof/*. Close the returned server to stop it; it does not
// stop with System.Close.
func (s *System) ServeDebug(addr string) (*DebugServer, error) {
	return obs.ServeDebug(addr, s.metrics, s.flight)
}

// Close releases the system's resources. Any in-flight round — a SaveAsync
// drain, a concurrent Save, a Load — is cancelled and waited for before the
// network is torn down, so no protocol goroutine outlives the System. When
// in-flight work had to be thrown away, Close reports it with an error
// wrapping ErrSaveAborted (the checkpoint state is still consistent: the
// previous committed version remains loadable). A round that managed to
// commit before the cancellation landed is not an error.
func (s *System) Close() error {
	s.timerMu.Lock()
	for node, t := range s.killTimers {
		t.Stop()
		delete(s.killTimers, node)
	}
	s.timerMu.Unlock()
	errCkpt := s.ckpt.Close()
	errNet := s.net.Close()
	return errors.Join(errCkpt, errNet)
}

// Topology returns the training topology.
func (s *System) Topology() *Topology { return s.topo }

// Version returns the latest checkpoint version (0 before the first save).
func (s *System) Version() int { return s.ckpt.Version() }

// Save checkpoints all workers' state dicts (indexed by world rank) into
// erasure-coded in-memory chunks: the paper's eccheck.save. It blocks
// through the whole round. If another save round is already in flight it
// fails fast with ErrSaveInFlight (use SaveAsync to wait instead).
func (s *System) Save(ctx context.Context, dicts []*StateDict) (*SaveReport, error) {
	return s.ckpt.Save(ctx, dicts)
}

// SaveAsync checkpoints with the snapshot-and-drain split: it blocks only
// through step 1 (the DtoH offload of every worker's tensor state into host
// staging buffers) and returns a SaveHandle while encoding, XOR reduction,
// P2P placement, commit and remote persistence drain on background
// goroutines. Training may resume — and mutate the live dicts — the moment
// SaveAsync returns. The previous checkpoint stays committed and loadable
// until the drain passes the commit barrier; a crash mid-drain degrades
// recovery to the previous version. If another save round is in flight,
// SaveAsync waits for its drain to finish before starting.
func (s *System) SaveAsync(ctx context.Context, dicts []*StateDict) (*SaveHandle, error) {
	return s.ckpt.SaveAsync(ctx, dicts)
}

// Load recovers the latest checkpoint from the surviving in-memory chunks,
// restores full fault tolerance, and returns every worker's state dict:
// the paper's eccheck.load. Failed machines must be replaced first with
// ReplaceNode.
func (s *System) Load(ctx context.Context) ([]*StateDict, *LoadReport, error) {
	return s.ckpt.Load(ctx)
}

// LoadFromRemote recovers from the remote persistence tier (catastrophic
// failures beyond M machines). Version 0 selects the newest persisted one.
// The context bounds the whole restore; each remote fetch additionally
// honors the system's configured OpTimeout, so a hung remote tier surfaces
// as a bounded error instead of a frozen recovery.
func (s *System) LoadFromRemote(ctx context.Context, version int) ([]*StateDict, error) {
	return s.ckpt.LoadFromRemote(ctx, version)
}

// LoadPartial lazily restores only the requested workers' state dicts —
// the serving-failover fast path, where the ranks hosting an MoE model's
// hot experts must come back inside the latency budget and the rest of
// the fleet can restore later. Packets are fetched directly from their
// chunk owners; a dead or corrupt owner degrades that rank to an erasure
// decode (workflow "partial-decode") instead of failing the round. Fault
// tolerance is NOT restored — follow up with Load, or warm replacements
// with PrefetchNode.
func (s *System) LoadPartial(ctx context.Context, ranks []int) (map[int]*StateDict, *LoadReport, error) {
	return s.ckpt.LoadPartial(ctx, ranks)
}

// PrefetchReport summarises a warm-standby parity prefetch.
type PrefetchReport = core.PrefetchReport

// PrefetchNode warms a standby: the node (typically fresh from
// ReplaceNode) rebuilds its chunk from k surviving chunks and copies the
// small-component broadcast set, off the recovery critical path, so the
// next Load runs the pure replacement workflow with zero rebuilds and the
// next LoadPartial of its workers hits the direct-fetch fast path.
func (s *System) PrefetchNode(ctx context.Context, node int) (*PrefetchReport, error) {
	return s.ckpt.PrefetchChunk(ctx, node)
}

// FailNode simulates a machine failure: the node's volatile host memory —
// including its checkpoint chunk — is destroyed.
func (s *System) FailNode(node int) error {
	err := s.clus.Fail(node)
	s.health.Recompute()
	return err
}

// ReplaceNode brings a failed machine back as a fresh, empty node. Under
// chaos, the replacement also gets a working transport again (a chaos kill
// only destroyed the old machine).
//
// The replacement is fenced behind the save slot: if a SaveAsync drain is
// in flight, ReplaceNode waits for it to finish (commit or abort) before
// swapping the slot. Without the fence a drain that started while the
// node was dead could observe the replacement halfway through its round —
// stage on the fresh node but commit against a manifest it never staged.
// The fence makes membership changes and save rounds strictly serial.
func (s *System) ReplaceNode(node int) error {
	err := s.ckpt.WithSaveFence(context.Background(), func() error {
		if err := s.clus.Replace(node); err != nil {
			return err
		}
		if s.chaosNet != nil {
			return s.chaosNet.Revive(node)
		}
		return nil
	})
	s.health.Recompute()
	return err
}

// AliveNodes lists the currently healthy machines.
func (s *System) AliveNodes() []int { return s.clus.AliveNodes() }

// NodeMemoryBytes returns a node's host-memory checkpoint footprint: the
// redundancy cost, directly comparable with replication-based designs.
func (s *System) NodeMemoryBytes(node int) int { return s.clus.MemoryBytes(node) }

// DataNodes returns the machines selected (by the sweep-line algorithm) to
// store data chunks.
func (s *System) DataNodes() []int {
	return append([]int(nil), s.ckpt.Plan().DataNodes...)
}

// ParityNodes returns the machines storing parity chunks.
func (s *System) ParityNodes() []int {
	return append([]int(nil), s.ckpt.Plan().ParityNodes...)
}

// FaultTolerance returns the number of additional concurrent machine
// failures the system survives right now: the code's parity count m minus
// the slots currently unable to serve their chunk (dead machines, and
// fresh joiners whose chunk has not been restored or rebuilt yet). A
// healthy cluster reports m; a completed drain+AddNode cycle returns to m
// immediately, while a crash leave stays below m until the next Load
// rebuilds the lost chunk.
func (s *System) FaultTolerance() int {
	ft := s.ckpt.Code().M() - s.ckpt.DegradedSlots()
	if ft < 0 {
		ft = 0
	}
	return ft
}

// IncrementalReport summarises a delta checkpoint round.
type IncrementalReport = core.IncrementalReport

// SaveIncremental checkpoints by patching the previous coded checkpoint
// with per-buffer deltas (requires Config.Incremental). When no usable
// previous state exists — first save, or caches lost to a failure — it
// transparently performs a full save.
func (s *System) SaveIncremental(ctx context.Context, dicts []*StateDict) (*IncrementalReport, error) {
	return s.ckpt.SaveIncremental(ctx, dicts)
}

// VerifyReport summarises an integrity scan.
type VerifyReport = core.VerifyReport

// VerifyIntegrity recomputes parity from the stored data chunks and checks
// it against the stored parity chunks, detecting silent host-memory
// corruption before a recovery depends on it.
func (s *System) VerifyIntegrity() (*VerifyReport, error) {
	return s.ckpt.VerifyIntegrity()
}

// ScheduleNodeKill arranges for node to crash after it performs
// afterSends more transport sends (0 kills it on its very next send).
// Requires Config.Chaos; the kill destroys the node's host memory like
// FailNode and makes every subsequent transport operation on it fail
// with ErrChaosKilled.
func (s *System) ScheduleNodeKill(node, afterSends int) error {
	if s.chaosNet == nil {
		return fmt.Errorf("eccheck: chaos not enabled (set Config.Chaos)")
	}
	return s.chaosNet.ScheduleKill(node, afterSends)
}

// ChaosStats reports fault-injection counters. Requires Config.Chaos.
func (s *System) ChaosStats() (ChaosStats, error) {
	if s.chaosNet == nil {
		return ChaosStats{}, fmt.Errorf("eccheck: chaos not enabled (set Config.Chaos)")
	}
	return s.chaosNet.Stats(), nil
}

// CorruptChunk flips one bit in the middle of node's stored chunk,
// simulating silent host-memory corruption. The damage is caught by the
// blob checksum on the next Load or VerifyIntegrity and repaired through
// the erasure code.
func (s *System) CorruptChunk(node int) error {
	return s.ckpt.CorruptChunkByte(node)
}

// killNode makes the preemption deadline land: under chaos the chaos
// network kills the node (destroying its host memory via the OnKill
// hook), otherwise the cluster slot fails directly. Idempotent.
func (s *System) killNode(node int) {
	s.stopKillTimer(node)
	if s.chaosNet != nil {
		// The chaos OnKill hook recomputes health.
		_ = s.chaosNet.KillNow(node)
		return
	}
	_ = s.clus.Fail(node)
	s.health.Recompute()
}

// stopKillTimer disarms a non-chaos preemption deadline, if one is armed.
func (s *System) stopKillTimer(node int) {
	s.timerMu.Lock()
	if t, ok := s.killTimers[node]; ok {
		t.Stop()
		delete(s.killTimers, node)
	}
	s.timerMu.Unlock()
}

// finishLeave folds a drain outcome into the (report, error) contract
// shared by PreemptNode and RemoveNode: the doomed node is killed no
// matter what (the deadline is the platform's, not ours), and a drain
// that lost its race comes back as a degraded report rather than an
// error — the cluster is still recoverable through the erasure code.
// Only lifecycle errors (system closed, caller's context cancelled
// before its deadline) surface as errors.
func (s *System) finishLeave(node int, rep *DrainReport, err error) (*DrainReport, error) {
	s.killNode(node)
	if err == nil {
		return rep, nil
	}
	if errors.Is(err, ErrClosed) {
		return nil, err
	}
	if rep == nil {
		rep = &DrainReport{Node: node, Custodian: -1, Reason: err.Error()}
	}
	return rep, nil
}

// PreemptNode delivers a spot-style preemption notice for node: the node
// has `notice` time left, drains its committed checkpoint blobs to a live
// custodian (see RemoveNode), and is killed when the deadline lands —
// whether or not the drain finished. With sufficient notice the returned
// report has Completed true and the slot's state survives; when the
// notice expires mid-drain the report explains the degradation (with a
// flight-recorder postmortem when enabled) and recovery falls back to the
// erasure rebuild, exactly as if the node had crashed. A zero or negative
// notice kills immediately. Under chaos the chaos network owns the
// deadline (SchedulePreemption), so a plan-scheduled notice and an
// explicit PreemptNode agree on when the kill lands.
func (s *System) PreemptNode(ctx context.Context, node int, notice time.Duration) (*DrainReport, error) {
	if notice <= 0 {
		s.killNode(node)
		return &DrainReport{Node: node, Custodian: -1, Reason: "no notice"}, nil
	}
	if err := s.clus.BeginDrain(node); err != nil {
		return nil, err
	}
	var deadline time.Time
	if s.chaosNet != nil {
		d, err := s.chaosNet.SchedulePreemption(node, notice)
		if err != nil {
			_ = s.clus.EndDrain(node)
			return nil, err
		}
		deadline = d
	} else {
		deadline = time.Now().Add(notice)
		s.timerMu.Lock()
		if t, ok := s.killTimers[node]; ok {
			t.Stop()
		}
		s.killTimers[node] = time.AfterFunc(notice, func() {
			_ = s.clus.Fail(node)
			s.health.Recompute()
		})
		s.timerMu.Unlock()
	}
	dctx, cancel := context.WithDeadline(ctx, deadline)
	rep, err := s.ckpt.DrainNode(dctx, node)
	cancel()
	return s.finishLeave(node, rep, err)
}

// RemoveNode takes node out of the cluster gracefully: the node enters
// the Draining state, ships its committed checkpoint blobs to a live
// custodian (chosen in ring order), and is then killed. Unlike
// PreemptNode there is no deadline — the drain gets as long as the
// context allows. After a completed drain the next AddNode on the slot
// restores the blobs verbatim and the following Load performs ZERO
// erasure rebuilds.
func (s *System) RemoveNode(ctx context.Context, node int) (*DrainReport, error) {
	if err := s.clus.BeginDrain(node); err != nil {
		return nil, err
	}
	rep, err := s.ckpt.DrainNode(ctx, node)
	return s.finishLeave(node, rep, err)
}

// AddNode refills a vacated (dead) slot with a fresh machine and repairs
// its share of the checkpoint. If the slot left through a completed drain
// (RemoveNode, or PreemptNode with enough notice), the custodian hands
// every blob back and full FaultTolerance returns immediately with zero
// rebuilds. If the slot crashed holding a data chunk, placement is
// recompiled around the empty machine (the joiner is demoted to parity
// duty), intact chunks migrate to their new homes, and only the lost
// chunk is left for the next Load to re-encode. The replacement itself is
// fenced behind the save slot like ReplaceNode.
func (s *System) AddNode(ctx context.Context, node int) (*JoinReport, error) {
	s.stopKillTimer(node)
	if err := s.ReplaceNode(node); err != nil {
		return nil, err
	}
	return s.ckpt.RepairNode(ctx, node)
}

// OnPreemptionNotice registers fn to run when a chaos-plan preemption
// notice fires (ChaosPreemption entries in the plan, or an explicit
// PreemptNode under chaos): the node has until deadline before the kill
// lands. Requires Config.Chaos. The callback runs on a transport
// goroutine in the middle of a protocol operation — do not call System
// methods from it; hand the event to your training loop (e.g. over a
// channel) and react between rounds, the way a real trainer handles a
// spot two-minute warning.
func (s *System) OnPreemptionNotice(fn func(node int, deadline time.Time)) error {
	if s.chaosNet == nil {
		return fmt.Errorf("eccheck: chaos not enabled (set Config.Chaos)")
	}
	s.chaosNet.SetOnNotice(fn)
	return nil
}
