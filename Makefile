GO ?= go

.PHONY: check fmt vet build test race smoke doclint allocgate chaos-soak scale-smoke restore-smoke daemon-smoke health-smoke vulncheck metrics-demo trace-demo

# The full gate: what CI (and a pre-commit run) should execute.
check: fmt vet build test race smoke doclint allocgate

# Formatting is part of the gate: fail loudly with the offending files
# rather than letting gofmt drift accumulate.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# TESTFLAGS lets CI pass -short, keeping full-size stress tests and 64 MB
# benchmarks out of the PR gate while the weekly benchmark job runs them.
TESTFLAGS ?=

test:
	$(GO) test $(TESTFLAGS) ./...

# The concurrency-sensitive packages under the race detector. internal/core
# runs the full save/load protocol across node goroutines and internal/obs
# is the lock-free metrics layer they all record into, so both are part of
# the gate despite the longer runtime. The root package exercises the
# public SaveAsync/Close lifecycle (snapshot-and-drain, close-during-save).
race:
	$(GO) test -race $(TESTFLAGS) . ./internal/transport ./internal/cluster ./internal/chaos ./internal/obs ./internal/core ./internal/bufpool ./internal/ecpool

# Seeded chaos smoke test: replication head-to-head, a mid-save kill, and
# a corruption-as-erasure recovery, all deterministic.
smoke:
	$(GO) run ./examples/faulttolerance

# The public API is the operator surface: every exported identifier in the
# root package must carry a doc comment.
doclint:
	$(GO) run ./cmd/doclint .

# Allocation gate: the flight recorder must be free when disabled. Every
# emitter on a nil recorder and the phase clock's per-buffer Switch on
# the save hot path must be 0 allocs/op — these tests fail otherwise.
# Membership-quiescent state queries (Alive/Draining/State/Generation)
# sit on the same hot path and are gated too, as are the round-lifecycle
# fan-out with no logger/health tracker and the phase clock with the
# stuck-round watchdog disabled.
allocgate:
	$(GO) test -run 'TestDisabledRecorderZeroAlloc' -count=1 ./internal/obs/flight
	$(GO) test -run 'TestPhaseClockZeroAllocWithoutRecorder|TestPhaseClockZeroAllocWatchdogDisabled|TestRoundHooksZeroAllocWhenDisabled' -count=1 ./internal/core
	$(GO) test -run 'TestMembershipStateZeroAlloc' -count=1 ./internal/cluster

# Randomized elastic-membership churn (preempt/drain/rejoin racing saves
# and loads) under the race detector. Seeded and bounded; TESTFLAGS=-short
# shrinks the round count for the PR gate.
chaos-soak:
	$(GO) test -race -run 'TestChaosSoakMembershipChurn' -count=1 $(TESTFLAGS) .

# Scale-out smoke: one streaming save round at 64 simulated nodes (the
# smallest size where the hierarchical fan-in tree goes multi-level with
# the default arity of 8). Fails if the pipeline cannot complete at that
# scale or the measurement comes back degenerate — the guard that keeps
# the BENCH_6.json sweep reproducible without running the full thing.
scale-smoke:
	$(GO) run ./cmd/eccheck-bench -scale-smoke

# Fast-restore smoke: a budgeted 16-node restore sweep under the race
# detector — full load, lazy partial load of the hot MoE ranks, and the
# catastrophic remote path serial vs pooled. Fails if the partial restore
# stops fetching strictly fewer bytes than the full one or the pooled
# remote restore stops beating the serial baseline — the guard that keeps
# the BENCH_7.json restore story reproducible without running the full
# study.
restore-smoke:
	$(GO) run -race ./cmd/eccheck-bench -restore-smoke

# End-to-end service gate for the eccheckd control plane: builds the real
# binary, boots it on a loopback port, registers two jobs over HTTP, drives
# concurrent saves through the single fleet-wide save slot (asserting the
# serialization is visible in /metrics per-job labels), injects a machine
# failure, recovers with a byte-verified load, and SIGTERMs expecting a
# clean drain. Skipped under TESTFLAGS=-short, so it needs its own target.
daemon-smoke:
	$(GO) test -run 'TestDaemonSmoke' -count=1 -v ./cmd/eccheckd

# Observability gate for the protection-health surface: boots the real
# eccheckd with JSON logging and the watchdog armed, subscribes to the
# /v1/events SSE stream, kills machines until the job's level walks
# OK -> Degraded -> AtRisk -> Unprotected, asserts /readyz flips exactly
# at AtRisk, and requires every stderr log line to parse as JSON. Runs
# under the race detector — the health tracker and event bus sit on
# every round's goroutines. Skipped under TESTFLAGS=-short, so it needs
# its own target.
health-smoke:
	$(GO) test -race -run 'TestHealthSmoke' -count=1 -v ./cmd/eccheckd
	$(GO) test -race -run 'TestHealthTransitions|TestMetricHelpCoverage|TestRouteCollisions' -count=1 ./internal/daemon

# Known-vulnerability scan over the module graph and reachable call paths.
# Uses the golang.org/x/vuln scanner; requires network access to the Go
# vulnerability database, so it runs in CI rather than in `make check`.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# One checkpoint-and-recover round with the per-phase breakdown and the
# full metric registry printed: the quickest way to see the observability
# surface in action.
metrics-demo:
	$(GO) run ./cmd/eccheck-sim -iters 5 -ckpt-every 5 -fail-at 5 -metrics

# A chaos-free simulated run with the flight recorder on, exported as
# eccheck.trace.json — drop the file on ui.perfetto.dev (or
# chrome://tracing) to browse the per-node, per-phase timeline with P2P
# flow arrows.
trace-demo:
	$(GO) run ./cmd/eccheck-sim -iters 10 -ckpt-every 5 -fail-at 7 -trace-out eccheck.trace.json
