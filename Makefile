GO ?= go

.PHONY: check vet build test race smoke

# The full gate: what CI (and a pre-commit run) should execute.
check: vet build test race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/transport ./internal/cluster ./internal/chaos

# Seeded chaos smoke test: replication head-to-head, a mid-save kill, and
# a corruption-as-erasure recovery, all deterministic.
smoke:
	$(GO) run ./examples/faulttolerance
