package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := experiments()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
	}
	for _, want := range []string{"table1", "fig3", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation", "groupsize"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestExperimentsProduceOutput(t *testing.T) {
	// Run the cheap analytical experiments end to end through the
	// registry (the timing ones are covered by the harness tests).
	for _, name := range []string{"table1", "fig3", "fig4", "fig15"} {
		for _, e := range experiments() {
			if e.name != name {
				continue
			}
			var buf bytes.Buffer
			if err := e.run(&buf); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", name)
			}
			if !strings.Contains(strings.ToLower(buf.String()), strings.TrimPrefix(name, "fig")) &&
				name != "table1" {
				t.Errorf("%s output does not mention itself", name)
			}
		}
	}
}
