// Command eccheck-bench regenerates the tables and figures of the ECCheck
// paper's evaluation section. Each experiment prints the same rows/series
// the paper reports, computed from the library's timing and analysis
// layers.
//
// Usage:
//
//	eccheck-bench            # run every experiment
//	eccheck-bench fig10 fig13
//	eccheck-bench -list
//	eccheck-bench -metrics-out metrics.json fig11
//	eccheck-bench -bench-out BENCH.json
//	eccheck-bench -bench-out BENCH.json -nodes 8
//	eccheck-bench -stall-out BENCH_STALL.json
//	eccheck-bench -elastic-out BENCH_5.json
//	eccheck-bench -scale-out BENCH_6.json
//	eccheck-bench -scale-smoke
//	eccheck-bench -restore-out BENCH_7.json
//	eccheck-bench -restore-smoke
//
// -metrics-out additionally runs one fully instrumented functional
// checkpoint round (save, integrity verification, failure, recovery) on a
// small in-process cluster and writes every metric series the system
// recorded — phase timings, transport traffic, host-memory and remote-tier
// volumes — as a machine-readable JSON dump to the given file. With no
// experiment names on the command line, -metrics-out performs only the
// dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"eccheck"
	"eccheck/internal/harness"
	"eccheck/internal/obs"
)

type experiment struct {
	name string
	desc string
	run  func(io.Writer) error
}

func experiments() []experiment {
	wrap := func(fn func(io.Writer) error) func(io.Writer) error { return fn }
	return []experiment{
		{"table1", "model configurations with analytic sizes", wrap(func(w io.Writer) error {
			_, err := harness.TableI(w)
			return err
		})},
		{"fig3", "cluster recovery rate: replication vs erasure coding", wrap(func(w io.Writer) error {
			_, err := harness.Fig3(w)
			return err
		})},
		{"fig4", "serialization share of checkpoint time vs bandwidth", wrap(func(w io.Writer) error {
			_, err := harness.Fig4(w)
			return err
		})},
		{"fig10", "checkpointing time across models and methods", wrap(func(w io.Writer) error {
			_, err := harness.Fig10(w)
			return err
		})},
		{"fig11", "ECCheck time breakdown (steps 1-3)", wrap(func(w io.Writer) error {
			_, err := harness.Fig11(w)
			return err
		})},
		{"fig12", "iteration time vs checkpoint frequency", wrap(func(w io.Writer) error {
			_, err := harness.Fig12(w)
			return err
		})},
		{"fig13", "recovery time in both failure scenarios", wrap(func(w io.Writer) error {
			_, err := harness.Fig13(w)
			return err
		})},
		{"fig14", "scalability of checkpointing time with GPU count", wrap(func(w io.Writer) error {
			_, err := harness.Fig14(w)
			return err
		})},
		{"fig15", "fault tolerance at equal redundancy vs group size", wrap(func(w io.Writer) error {
			_, err := harness.Fig15(w)
			return err
		})},
		{"ablation", "design-choice ablations (scheduling, pipelining, selection, code)", wrap(func(w io.Writer) error {
			_, err := harness.Ablations(w)
			return err
		})},
		{"groupsize", "group-based checkpointing trade-off (the paper's future-work study)", wrap(func(w io.Writer) error {
			_, err := harness.GroupSizeStudy(w)
			return err
		})},
		{"frequency", "Young-Daly optimal checkpoint interval and expected waste per method", wrap(func(w io.Writer) error {
			_, err := harness.FrequencyStudy(w)
			return err
		})},
		{"incremental", "delta-update volume vs changed state fraction (functional layer)", wrap(func(w io.Writer) error {
			_, err := harness.IncrementalStudy(w)
			return err
		})},
		{"async", "SaveAsync stall vs background drain across model scales (functional layer)", wrap(func(w io.Writer) error {
			_, err := harness.AsyncStudy(w)
			return err
		})},
		{"elastic", "membership churn: crash+full re-encode vs drain+delta parity (functional layer)", wrap(func(w io.Writer) error {
			_, err := harness.ElasticStudy(w)
			return err
		})},
		{"scaleout", "streaming pipeline vs phase-coarse baseline across node counts (functional layer)", wrap(func(w io.Writer) error {
			_, err := harness.ScaleOutStudy(w, harness.ScaleConfig{
				NodeCounts:    []int{4, 16, 64},
				PerRankBytes:  16 << 10,
				BufferSize:    4 << 10,
				PipelineDepth: 3,
				GroupFanIn:    8,
				LinkLatency:   20 * time.Microsecond,
				LinkGBps:      12.5,
				Rounds:        2,
				Baseline:      true,
			})
			return err
		})},
	}
}

func main() {
	os.Exit(run())
}

// dumpMetrics runs one instrumented functional round — two saves, an
// integrity scan, a machine failure and the recovery — and writes the
// resulting metric snapshot as JSON.
func dumpMetrics(path string) error {
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 2, TPDegree: 2, PPStages: 4,
		K: 2, M: 2, BufferSize: 256 << 10,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 7
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := sys.Save(ctx, dicts); err != nil {
			return err
		}
	}
	if _, err := sys.VerifyIntegrity(); err != nil {
		return err
	}
	if err := sys.FailNode(1); err != nil {
		return err
	}
	if err := sys.ReplaceNode(1); err != nil {
		return err
	}
	if _, _, err := sys.Load(ctx); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sys.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run() int {
	list := flag.Bool("list", false, "list available experiments and exit")
	metricsOut := flag.String("metrics-out", "", "run an instrumented functional round and write its metric snapshot as JSON to this file")
	benchOut := flag.String("bench-out", "", "measure steady-state save rounds, encode bandwidth and the XOR kernel (throughput, allocs/op, B/op) and write the JSON snapshot to this file")
	nodes := flag.Int("nodes", 4, "node count for the -bench-out save-round cluster (multiple of 4; k=m=nodes/2)")
	scaleOut := flag.String("scale-out", "", "run the 4-256 node streaming scale-out sweep with phase-coarse baselines and write the JSON snapshot (BENCH_6.json schema) to this file")
	scaleSmoke := flag.Bool("scale-smoke", false, "run the quick 64-node streaming smoke point (the CI scale guard) and exit")
	restoreOut := flag.String("restore-out", "", "run the fast-restore study (full vs lazy partial vs remote serial/pooled on the MoE workload) and write the JSON snapshot (BENCH_7.json schema) to this file")
	restoreSmoke := flag.Bool("restore-smoke", false, "run the quick 16-node budgeted restore sweep (the CI restore guard) and exit")
	stallOut := flag.String("stall-out", "", "measure sync Save wall time vs SaveAsync blocking time vs the offload-phase floor and write the JSON snapshot to this file")
	elasticOut := flag.String("elastic-out", "", "measure the membership-churn byte and wall-time breakdown (crash+full re-encode vs drain+delta parity) and write the JSON snapshot to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof on this address while experiments run (experiments build their own systems, so /metrics and /trace are empty here; use eccheck-sim -debug-addr for those)")
	flag.Parse()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof\n", dbg.Addr())
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return 0
	}

	selected := flag.Args()
	if len(selected) == 0 && *metricsOut == "" && *benchOut == "" && *stallOut == "" &&
		*elasticOut == "" && *scaleOut == "" && !*scaleSmoke &&
		*restoreOut == "" && !*restoreSmoke {
		for _, e := range exps {
			selected = append(selected, e.name)
		}
	}
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	sort.Strings(selected)

	failed := false
	for i, name := range selected {
		e, ok := byName[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			failed = true
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
		}
	}
	if *metricsOut != "" {
		if err := dumpMetrics(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
		}
	}
	if *benchOut != "" {
		if err := runBenchOut(*benchOut, *nodes); err != nil {
			fmt.Fprintf(os.Stderr, "bench dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote bench snapshot to %s\n", *benchOut)
		}
	}
	if *stallOut != "" {
		if err := runStallOut(*stallOut); err != nil {
			fmt.Fprintf(os.Stderr, "stall dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote stall snapshot to %s\n", *stallOut)
		}
	}
	if *elasticOut != "" {
		if err := runElasticOut(*elasticOut); err != nil {
			fmt.Fprintf(os.Stderr, "elastic dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote elastic snapshot to %s\n", *elasticOut)
		}
	}
	if *scaleOut != "" {
		if err := runScaleOut(*scaleOut); err != nil {
			fmt.Fprintf(os.Stderr, "scale-out dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote scale-out snapshot to %s\n", *scaleOut)
		}
	}
	if *scaleSmoke {
		if err := runScaleSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "scale smoke: %v\n", err)
			failed = true
		}
	}
	if *restoreOut != "" {
		if err := runRestoreOut(*restoreOut); err != nil {
			fmt.Fprintf(os.Stderr, "restore dump: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wrote restore snapshot to %s\n", *restoreOut)
		}
	}
	if *restoreSmoke {
		if err := runRestoreSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "restore smoke: %v\n", err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
