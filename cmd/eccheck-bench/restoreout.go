package main

// Fast-restore study: the three recovery paths (full in-memory load,
// lazy partial load of the hot MoE ranks, catastrophic restore from the
// remote tier serial vs pooled) measured on one skewed workload.
// runRestoreOut produces the committed BENCH_7.json snapshot;
// runRestoreSmoke is the CI guard — a 16-node fleet, reduced rounds,
// that fails when the lazy path stops being lazy or the pooled
// catastrophic restore stops beating the serial baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"eccheck/internal/harness"
	"eccheck/internal/model"
)

// restoreDump is the machine-readable BENCH_7.json snapshot.
type restoreDump struct {
	Schema string   `json:"schema"`
	Env    benchEnv `json:"env"`
	// Study configuration, so successive dumps are comparable.
	Nodes         int   `json:"nodes"`
	GPUsPerNode   int   `json:"gpus_per_node"`
	World         int   `json:"world"`
	K             int   `json:"k"`
	M             int   `json:"m"`
	BufferBytes   int   `json:"buffer_bytes"`
	RemoteStallNs int64 `json:"remote_stall_ns"`
	BudgetNs      int64 `json:"budget_ns"`
	Rounds        int   `json:"rounds"`
	PayloadBytes  int64 `json:"payload_bytes"`
	// Full in-memory restore (median over rounds).
	FullNs               int64 `json:"full_load_ns"`
	FullBytesFetched     int64 `json:"full_bytes_fetched"`
	FullDeadlineExceeded bool  `json:"full_deadline_exceeded"`
	// Lazy restore of the hot MoE ranks.
	HotRanks             []int   `json:"hot_ranks"`
	PartialNs            int64   `json:"partial_load_ns"`
	PartialBytesFetched  int64   `json:"partial_bytes_fetched"`
	PartialWorkflow      string  `json:"partial_workflow"`
	PartialBytesFraction float64 `json:"partial_bytes_fraction"`
	// Catastrophic restore from the remote tier.
	RemoteSerialNs   int64   `json:"remote_serial_ns"`
	RemoteParallelNs int64   `json:"remote_parallel_ns"`
	RemoteWorkers    int     `json:"remote_workers"`
	RemoteSpeedup    float64 `json:"remote_speedup"`
}

// restoreDumpOf maps the harness result into the JSON schema.
func restoreDumpOf(cfg harness.RestoreConfig, res *harness.RestoreResult) restoreDump {
	frac := 0.0
	if res.FullBytes > 0 {
		frac = float64(res.PartialBytes) / float64(res.FullBytes)
	}
	return restoreDump{
		Schema:               "eccheck-restore/v1",
		Env:                  scaleEnv(),
		Nodes:                res.Nodes,
		GPUsPerNode:          cfg.GPUsPerNode,
		World:                res.World,
		K:                    res.K,
		M:                    res.M,
		BufferBytes:          cfg.BufferSize,
		RemoteStallNs:        cfg.RemoteStall.Nanoseconds(),
		BudgetNs:             cfg.Budget.Nanoseconds(),
		Rounds:               cfg.Rounds,
		PayloadBytes:         res.PayloadBytes,
		FullNs:               res.FullElapsed.Nanoseconds(),
		FullBytesFetched:     res.FullBytes,
		FullDeadlineExceeded: res.FullDeadlineExceeded,
		HotRanks:             res.HotRanks,
		PartialNs:            res.PartialElapsed.Nanoseconds(),
		PartialBytesFetched:  res.PartialBytes,
		PartialWorkflow:      res.PartialWorkflow,
		PartialBytesFraction: frac,
		RemoteSerialNs:       res.RemoteSerial.Nanoseconds(),
		RemoteParallelNs:     res.RemoteParallel.Nanoseconds(),
		RemoteWorkers:        res.RemoteWorkers,
		RemoteSpeedup:        res.RemoteSpeedup,
	}
}

// runRestoreOut runs the full fast-restore study and writes the
// BENCH_7.json snapshot. The table also prints to stderr so interactive
// runs see the numbers without opening the file.
func runRestoreOut(path string) error {
	cfg := harness.DefaultRestoreConfig()
	res, err := harness.RestoreStudy(os.Stderr, cfg)
	if err != nil {
		return err
	}
	dump := restoreDumpOf(cfg, res)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// restoreSmokeConfig is the reduced 16-node point `make restore-smoke`
// runs under -race. The smoke's serial-vs-pooled assertion must hold on
// any CI box, so the point is built to be latency-dominated: a tiny MoE
// payload (decode cost near zero, even with the race detector inflating
// compute) against a 2ms remote stall — the serial sweep pays
// world × stall in sequence while the pool overlaps them, a contrast
// scheduling noise cannot invert.
func restoreSmokeConfig() harness.RestoreConfig {
	cfg := harness.DefaultRestoreConfig()
	cfg.GPUsPerNode = 1
	cfg.Rounds = 2
	cfg.MoE = model.MoEConfig{Experts: 16, HotExperts: 2, Hidden: 32, FFN: 64}
	cfg.RemoteStall = 2 * time.Millisecond
	cfg.FlightEvents = 1024
	return cfg
}

// runRestoreSmoke is the CI guard: a 16-node budgeted restore sweep that
// fails when any path errors, when the lazy restore stops fetching fewer
// bytes than the full one (the harness already enforces that), or when
// the pooled catastrophic restore stops beating the serial baseline.
func runRestoreSmoke() error {
	res, err := harness.RestoreStudy(os.Stdout, restoreSmokeConfig())
	if err != nil {
		return err
	}
	if res.FullElapsed <= 0 || res.PartialElapsed <= 0 {
		return fmt.Errorf("restore smoke: degenerate measurement: %+v", res)
	}
	if res.RemoteParallel >= res.RemoteSerial {
		return fmt.Errorf("restore smoke: pooled remote restore (%v, %d workers) did not beat serial (%v)",
			res.RemoteParallel, res.RemoteWorkers, res.RemoteSerial)
	}
	return nil
}
