package main

// Steady-state performance measurement: the numbers CI tracks across PRs.
//
// runBenchOut measures the functional hot paths with the same methodology
// every time so successive BENCH_*.json dumps are comparable:
//
//   - save_round: steady-state distributed save rounds on a small in-process
//     cluster, reporting throughput alongside allocs/op and B/op measured
//     with runtime.ReadMemStats deltas (runtime.GC first, so only live
//     steady-state allocation is counted);
//   - encode: raw pooled Cauchy Reed-Solomon encode bandwidth with the same
//     alloc accounting;
//   - xor_kernel: the word-wise XOR kernel by itself.
//
// The dump is machine-readable JSON; EXPERIMENTS.md describes how the
// committed BENCH_*.json snapshots are produced and compared.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eccheck"
	"eccheck/internal/ecpool"
	"eccheck/internal/erasure"
	"eccheck/internal/gf"
)

// benchEnv identifies the machine the numbers were taken on.
type benchEnv struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// saveRoundResult is the steady-state save-round measurement.
type saveRoundResult struct {
	Rounds        int     `json:"rounds"`
	Nodes         int     `json:"nodes"`
	K             int     `json:"k"`
	M             int     `json:"m"`
	BufferBytes   int     `json:"buffer_bytes"`
	PayloadBytes  int64   `json:"payload_bytes_per_round"`
	NsPerOp       int64   `json:"ns_per_op"`
	MBPerS        float64 `json:"mb_per_s"`
	AllocsPerOp   uint64  `json:"allocs_per_op"`
	AllocBytesPer uint64  `json:"alloc_bytes_per_op"`
}

// encodeResult is one pooled-encode measurement row.
type encodeResult struct {
	K             int     `json:"k"`
	M             int     `json:"m"`
	Threads       int     `json:"threads"`
	ChunkBytes    int     `json:"chunk_bytes"`
	XORs          int     `json:"xors"`
	GBPerS        float64 `json:"gb_per_s"`
	AllocsPerOp   uint64  `json:"allocs_per_op"`
	AllocBytesPer uint64  `json:"alloc_bytes_per_op"`
}

// xorResult is the raw XOR kernel measurement.
type xorResult struct {
	SizeBytes int     `json:"size_bytes"`
	GBPerS    float64 `json:"gb_per_s"`
}

// benchDump is the full machine-readable snapshot.
type benchDump struct {
	Schema    string          `json:"schema"`
	Env       benchEnv        `json:"env"`
	SaveRound saveRoundResult `json:"save_round"`
	Encode    []encodeResult  `json:"encode"`
	XORKernel xorResult       `json:"xor_kernel"`
}

// measureAllocs runs fn n times and returns (elapsed, allocs/op, bytes/op).
// A GC runs first so the deltas reflect steady-state allocation only.
func measureAllocs(n int, fn func() error) (time.Duration, uint64, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, (m1.Mallocs - m0.Mallocs) / uint64(n), (m1.TotalAlloc - m0.TotalAlloc) / uint64(n), nil
}

// NodeCountError reports a -nodes value the bench's fixed layout (two
// GPUs per node, TP 2 × PP 4, k = m = nodes/2 erasure) cannot satisfy.
type NodeCountError struct {
	// Nodes is the rejected value; Reason says which constraint it broke.
	Nodes  int
	Reason string
}

// Error implements the error interface.
func (e *NodeCountError) Error() string {
	return fmt.Sprintf("invalid node count %d: %s", e.Nodes, e.Reason)
}

// validateBenchNodes checks a -nodes value against the save-round bench's
// layout and returns the erasure parameters k = m = nodes/2. With two GPUs
// per node the world is 2·nodes; TP 2 × PP 4 tiles it only when nodes is a
// multiple of 4, and that same multiple guarantees k divides the world.
func validateBenchNodes(nodes int) (k, m int, err error) {
	if nodes < 4 {
		return 0, 0, &NodeCountError{Nodes: nodes,
			Reason: "k = m = nodes/2 erasure needs at least 4 nodes"}
	}
	if nodes%4 != 0 {
		return 0, 0, &NodeCountError{Nodes: nodes,
			Reason: "must be a multiple of 4 so TP 2 × PP 4 tiles the 2-GPU/node world"}
	}
	return nodes / 2, nodes / 2, nil
}

// benchSaveRound measures steady-state distributed save rounds on a
// cluster of the given node count (two GPUs per node, k = m = nodes/2).
func benchSaveRound(rounds, nodes int) (saveRoundResult, error) {
	const (
		gpus        = 2
		bufferBytes = 256 << 10
	)
	k, m, err := validateBenchNodes(nodes)
	if err != nil {
		return saveRoundResult{}, err
	}
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: nodes, GPUsPerNode: gpus, TPDegree: 2, PPStages: 4,
		K: k, M: m, BufferSize: bufferBytes, DisableRemote: true,
	})
	if err != nil {
		return saveRoundResult{}, err
	}
	defer sys.Close()

	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 7
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		return saveRoundResult{}, err
	}
	var payload int64
	for _, sd := range dicts {
		payload += int64(sd.TensorBytes())
	}
	ctx := context.Background()
	// Warm up: the first rounds populate buffer pools, mailboxes and metric
	// instruments; steady state is what training observes every interval.
	for i := 0; i < 3; i++ {
		if _, err := sys.Save(ctx, dicts); err != nil {
			return saveRoundResult{}, err
		}
	}
	elapsed, allocs, bytes, err := measureAllocs(rounds, func() error {
		_, err := sys.Save(ctx, dicts)
		return err
	})
	if err != nil {
		return saveRoundResult{}, err
	}
	return saveRoundResult{
		Rounds:        rounds,
		Nodes:         nodes,
		K:             k,
		M:             m,
		BufferBytes:   bufferBytes,
		PayloadBytes:  payload,
		NsPerOp:       elapsed.Nanoseconds() / int64(rounds),
		MBPerS:        float64(payload) * float64(rounds) / elapsed.Seconds() / 1e6,
		AllocsPerOp:   allocs,
		AllocBytesPer: bytes,
	}, nil
}

// benchEncode measures pooled encode bandwidth for one configuration.
func benchEncode(k, m, threads, size, iters int) (encodeResult, error) {
	code, err := erasure.New(k, m)
	if err != nil {
		return encodeResult{}, err
	}
	chunk := code.ChunkAlign(size)
	data := make([][]byte, k)
	parity := make([][]byte, m)
	for i := range data {
		data[i] = make([]byte, chunk)
		for j := 0; j < chunk; j += 4096 {
			data[i][j] = byte(i + j)
		}
	}
	for i := range parity {
		parity[i] = make([]byte, chunk)
	}
	pool := ecpool.NewPool(threads)
	defer pool.Close()
	if err := pool.Encode(code, data, parity); err != nil {
		return encodeResult{}, err
	}
	elapsed, allocs, bytes, err := measureAllocs(iters, func() error {
		return pool.Encode(code, data, parity)
	})
	if err != nil {
		return encodeResult{}, err
	}
	return encodeResult{
		K:             k,
		M:             m,
		Threads:       threads,
		ChunkBytes:    chunk,
		XORs:          code.EncodeXORCount(),
		GBPerS:        float64(iters) * float64(k) * float64(chunk) / elapsed.Seconds() / 1e9,
		AllocsPerOp:   allocs,
		AllocBytesPer: bytes,
	}, nil
}

// benchXOR measures the raw gf.XORSlice kernel.
func benchXOR(size, iters int) (xorResult, error) {
	dst := make([]byte, size)
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := gf.XORSlice(dst, src); err != nil {
			return xorResult{}, err
		}
	}
	elapsed := time.Since(start)
	return xorResult{
		SizeBytes: size,
		GBPerS:    float64(iters) * float64(size) / elapsed.Seconds() / 1e9,
	}, nil
}

// runBenchOut produces the machine-readable performance snapshot, with
// the save-round measurement taken on a cluster of the given node count.
func runBenchOut(path string, nodes int) error {
	dump := benchDump{
		Schema: "eccheck-bench/v1",
		Env: benchEnv{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	var err error
	if dump.SaveRound, err = benchSaveRound(10, nodes); err != nil {
		return fmt.Errorf("save round: %w", err)
	}
	for _, cfg := range [][2]int{{2, 2}, {8, 4}} {
		for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
			res, err := benchEncode(cfg[0], cfg[1], threads, 8<<20, 5)
			if err != nil {
				return fmt.Errorf("encode (%d,%d)x%d: %w", cfg[0], cfg[1], threads, err)
			}
			dump.Encode = append(dump.Encode, res)
			if runtime.GOMAXPROCS(0) == 1 {
				break // the two thread counts coincide
			}
		}
	}
	if dump.XORKernel, err = benchXOR(16<<20, 50); err != nil {
		return fmt.Errorf("xor kernel: %w", err)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
