package main

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateBenchNodes(t *testing.T) {
	for _, tc := range []struct {
		nodes, k, m int
	}{
		{4, 2, 2},
		{8, 4, 4},
		{16, 8, 8},
		{64, 32, 32},
	} {
		k, m, err := validateBenchNodes(tc.nodes)
		if err != nil {
			t.Fatalf("nodes=%d: unexpected error %v", tc.nodes, err)
		}
		if k != tc.k || m != tc.m {
			t.Fatalf("nodes=%d: got k=%d m=%d, want k=%d m=%d", tc.nodes, k, m, tc.k, tc.m)
		}
	}
}

func TestValidateBenchNodesRejectsBadCounts(t *testing.T) {
	for _, nodes := range []int{0, 1, 2, 3, 6, 10, 42, -4} {
		_, _, err := validateBenchNodes(nodes)
		if err == nil {
			t.Fatalf("nodes=%d: expected error, got nil", nodes)
		}
		var nce *NodeCountError
		if !errors.As(err, &nce) {
			t.Fatalf("nodes=%d: error %T is not *NodeCountError", nodes, err)
		}
		if nce.Nodes != nodes {
			t.Fatalf("nodes=%d: error carries Nodes=%d", nodes, nce.Nodes)
		}
		if !strings.Contains(err.Error(), "invalid node count") {
			t.Fatalf("nodes=%d: unhelpful message %q", nodes, err.Error())
		}
	}
}
