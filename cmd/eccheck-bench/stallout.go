package main

// Stall-time measurement: how long training actually blocks per checkpoint.
//
// runStallOut compares, on the same warmed-up in-process cluster, the wall
// time of the synchronous Save against the blocking portion of SaveAsync
// (the snapshot stage) and against the slowest node's offload work
// (serialize + offload phases) — the analytic floor the blocking time
// should sit on. The committed BENCH_*.json snapshots record the ratio so
// CI can catch the async path regressing into "blocks for the whole round".

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eccheck"
)

// stallRound is one paired sync/async measurement.
type stallRound struct {
	SyncNs       int64 `json:"sync_ns"`
	AsyncBlockNs int64 `json:"async_block_ns"`
	AsyncTotalNs int64 `json:"async_total_ns"`
	OverlapNs    int64 `json:"overlap_ns"`
	// OffloadNs is the snapshot-stage floor: per-node serialize+offload
	// work divided by the effective parallelism (see offloadFloorNs).
	OffloadNs int64 `json:"offload_ns"`
}

// stallDump is the machine-readable stall-time snapshot.
type stallDump struct {
	Schema       string       `json:"schema"`
	Env          benchEnv     `json:"env"`
	Nodes        int          `json:"nodes"`
	K            int          `json:"k"`
	M            int          `json:"m"`
	BufferBytes  int          `json:"buffer_bytes"`
	PayloadBytes int64        `json:"payload_bytes"`
	Rounds       []stallRound `json:"rounds"`
	// Means over the measured rounds.
	MeanSyncNs       int64 `json:"mean_sync_ns"`
	MeanAsyncBlockNs int64 `json:"mean_async_block_ns"`
	MeanOffloadNs    int64 `json:"mean_offload_ns"`
	// BlockToOffload is mean_async_block / mean_offload: 1.0 means
	// SaveAsync returns the moment the offload finishes; the acceptance
	// bound for the async design is |ratio - 1| <= 0.15.
	BlockToOffload float64 `json:"block_to_offload"`
	// BlockToSync is mean_async_block / mean_sync: the fraction of a full
	// round training still stalls for under SaveAsync.
	BlockToSync float64 `json:"block_to_sync"`
}

// offloadFloorNs returns the snapshot-stage floor from a save report: the
// per-node serialize + offload work divided by the effective parallelism.
// The node snapshots run on one goroutine per node, so with enough cores
// the floor is (approximately) the slowest node; on fewer cores the
// goroutines time-share and the floor is the aggregate work. SaveAsync's
// blocking time cannot beat this floor, and should sit close above it.
func offloadFloorNs(rep *eccheck.SaveReport) int64 {
	var sum time.Duration
	for _, phases := range rep.NodePhases {
		sum += phases["serialize"] + phases["offload"]
	}
	par := runtime.GOMAXPROCS(0)
	if n := len(rep.NodePhases); par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return sum.Nanoseconds() / int64(par)
}

// measureStall runs the paired sync/async rounds and aggregates the dump.
func measureStall(rounds int) (stallDump, error) {
	const (
		nodes, gpus = 4, 2
		k, m        = 2, 2
		bufferBytes = 256 << 10
	)
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: nodes, GPUsPerNode: gpus, TPDegree: 2, PPStages: 4,
		K: k, M: m, BufferSize: bufferBytes, DisableRemote: true,
	})
	if err != nil {
		return stallDump{}, err
	}
	defer sys.Close()

	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 7
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		return stallDump{}, err
	}
	var payload int64
	for _, sd := range dicts {
		payload += int64(sd.TensorBytes())
	}
	ctx := context.Background()
	// Warm up pools, mailboxes and metric instruments on both paths.
	if _, err := sys.Save(ctx, dicts); err != nil {
		return stallDump{}, err
	}
	if h, err := sys.SaveAsync(ctx, dicts); err != nil {
		return stallDump{}, err
	} else if _, err := h.Wait(ctx); err != nil {
		return stallDump{}, err
	}

	dump := stallDump{
		Schema: "eccheck-stall/v1",
		Env: benchEnv{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Nodes:        nodes,
		K:            k,
		M:            m,
		BufferBytes:  bufferBytes,
		PayloadBytes: payload,
	}
	var sumSync, sumBlock, sumOffload int64
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := sys.Save(ctx, dicts); err != nil {
			return stallDump{}, err
		}
		syncNs := time.Since(start).Nanoseconds()

		h, err := sys.SaveAsync(ctx, dicts)
		if err != nil {
			return stallDump{}, err
		}
		rep, err := h.Wait(ctx)
		if err != nil {
			return stallDump{}, err
		}
		r := stallRound{
			SyncNs:       syncNs,
			AsyncBlockNs: rep.StallNs.Nanoseconds(),
			AsyncTotalNs: rep.Elapsed.Nanoseconds(),
			OverlapNs:    rep.OverlapNs.Nanoseconds(),
			OffloadNs:    offloadFloorNs(rep),
		}
		if r.OffloadNs <= 0 {
			return stallDump{}, fmt.Errorf("round %d recorded no offload phase", i)
		}
		dump.Rounds = append(dump.Rounds, r)
		sumSync += r.SyncNs
		sumBlock += r.AsyncBlockNs
		sumOffload += r.OffloadNs
	}
	n := int64(rounds)
	dump.MeanSyncNs = sumSync / n
	dump.MeanAsyncBlockNs = sumBlock / n
	dump.MeanOffloadNs = sumOffload / n
	dump.BlockToOffload = float64(dump.MeanAsyncBlockNs) / float64(dump.MeanOffloadNs)
	dump.BlockToSync = float64(dump.MeanAsyncBlockNs) / float64(dump.MeanSyncNs)
	return dump, nil
}

// runStallOut produces the machine-readable stall-time snapshot.
func runStallOut(path string) error {
	dump, err := measureStall(10)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
