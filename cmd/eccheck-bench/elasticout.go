package main

// Elastic-membership measurement: full re-encode vs delta-parity repair.
//
// runElasticOut runs the harness's ElasticStudy — lose one data node
// between checkpoints under small-delta churn, once as a plain crash
// (reseat, erasure rebuild, full re-encode) and once as a drained
// preemption (custody transfer, verbatim restore, delta-parity update) —
// and writes the per-step byte and wall-time breakdown as JSON. The dump
// is the committed BENCH_*.json evidence for the elastic-membership
// claim: the drained path rebuilds zero chunks and moves a small
// fraction of the crash path's bytes.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"

	"eccheck/internal/harness"
)

// elasticPathDump is one strategy's measured breakdown.
type elasticPathDump struct {
	Name            string  `json:"name"`
	LeaveBytes      int64   `json:"leave_bytes"`
	RepairBytes     int64   `json:"repair_bytes"`
	RecoveryBytes   int64   `json:"recovery_bytes"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	TotalBytes      int64   `json:"total_bytes"`
	RebuiltChunks   int     `json:"rebuilt_chunks"`
	WallMS          float64 `json:"wall_ms"`
}

// elasticDump is the machine-readable snapshot.
type elasticDump struct {
	Schema     string          `json:"schema"`
	Env        benchEnv        `json:"env"`
	Full       elasticPathDump `json:"crash_full"`
	Delta      elasticPathDump `json:"drain_delta"`
	BytesRatio float64         `json:"bytes_ratio"`
}

func dumpElasticPath(p harness.ElasticPath) elasticPathDump {
	return elasticPathDump{
		Name:            p.Name,
		LeaveBytes:      p.LeaveBytes,
		RepairBytes:     p.RepairBytes,
		RecoveryBytes:   p.RecoveryBytes,
		CheckpointBytes: p.CheckpointBytes,
		TotalBytes:      p.TotalBytes(),
		RebuiltChunks:   p.RebuiltChunks,
		WallMS:          float64(p.Wall.Microseconds()) / 1e3,
	}
}

// runElasticOut produces the elastic-membership snapshot.
func runElasticOut(path string) error {
	res, err := harness.ElasticStudy(io.Discard)
	if err != nil {
		return err
	}
	dump := elasticDump{
		Schema: "eccheck-elastic/v1",
		Env: benchEnv{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Full:       dumpElasticPath(res.Full),
		Delta:      dumpElasticPath(res.Delta),
		BytesRatio: res.BytesRatio,
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
