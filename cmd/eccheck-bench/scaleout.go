package main

// Scale-out sweep: the streaming save pipeline measured across cluster
// sizes (4 → 256 simulated nodes), against the phase-coarse baseline
// (PipelineDepth 1) at every point. runScaleOut produces the committed
// BENCH_6.json snapshot; runScaleSmoke is the CI guard — a single
// 64-node point with reduced rounds that fails if the sweep cannot run
// at that scale.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eccheck/internal/harness"
)

// scaleRowJSON is one node-count point of the BENCH_6.json dump.
type scaleRowJSON struct {
	Nodes          int     `json:"nodes"`
	World          int     `json:"world"`
	K              int     `json:"k"`
	M              int     `json:"m"`
	Groups         int     `json:"groups"`
	PacketBytes    int     `json:"packet_bytes"`
	Buffers        int     `json:"buffers_per_packet"`
	PayloadBytes   int64   `json:"payload_bytes_per_round"`
	NsPerRound     int64   `json:"ns_per_round"`
	AggMBPerS      float64 `json:"agg_mb_per_s"`
	PerNodeMBPerS  float64 `json:"per_node_mb_per_s"`
	BaselineNs     int64   `json:"phase_coarse_ns_per_round"`
	Speedup        float64 `json:"streaming_speedup"`
	StragglerNode  int     `json:"straggler_node"`
	StragglerLagNs int64   `json:"straggler_lag_ns"`
}

// scaleDump is the full machine-readable scale-out snapshot.
type scaleDump struct {
	Schema string   `json:"schema"`
	Env    benchEnv `json:"env"`
	// Sweep configuration, so successive dumps are comparable.
	PerRankBytes  int     `json:"per_rank_bytes"`
	BufferBytes   int     `json:"buffer_bytes"`
	PipelineDepth int     `json:"pipeline_depth"`
	GroupFanIn    int     `json:"group_fan_in"`
	LinkLatencyNs int64   `json:"link_latency_ns"`
	LinkGBps      float64 `json:"link_gb_per_s"`
	Rounds        int     `json:"rounds"`
	// Rows are the flat-mode (one cluster-wide k = m = nodes/2 instance)
	// measurements; ScalingSlope is the exponent s of the log-log fit
	// agg MB/s ∝ nodes^s (1.0 = perfect weak scaling on real hardware;
	// in-process all nodes share one machine, so the slope tracks
	// protocol overhead, not bandwidth).
	Rows         []scaleRowJSON `json:"rows"`
	ScalingSlope float64        `json:"scaling_slope"`
	// GroupedRows repeat the sweep in the paper's grouped scheme
	// (independent instances of GroupSize nodes each), whose per-node
	// cost is constant by construction — the slope contrast against the
	// flat rows is the scaling story.
	GroupSize           int            `json:"grouped_group_size"`
	GroupedRows         []scaleRowJSON `json:"grouped_rows"`
	GroupedScalingSlope float64        `json:"grouped_scaling_slope"`
}

// scaleEnv captures the measurement machine for the dump header.
func scaleEnv() benchEnv {
	return benchEnv{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// scaleRowsJSON converts harness rows to their JSON form.
func scaleRowsJSON(rows []harness.ScaleRow) []scaleRowJSON {
	out := make([]scaleRowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, scaleRowJSON{
			Nodes:          r.Nodes,
			World:          r.World,
			K:              r.K,
			M:              r.M,
			Groups:         r.Groups,
			PacketBytes:    r.PacketBytes,
			Buffers:        r.Buffers,
			PayloadBytes:   r.PayloadBytes,
			NsPerRound:     r.Elapsed.Nanoseconds(),
			AggMBPerS:      r.AggMBps,
			PerNodeMBPerS:  r.PerNodeMBps,
			BaselineNs:     r.Baseline.Nanoseconds(),
			Speedup:        r.Speedup,
			StragglerNode:  r.StragglerNode,
			StragglerLagNs: r.StragglerLag.Nanoseconds(),
		})
	}
	return out
}

// runScaleOut runs the full 4→256-node sweep and writes the BENCH_6.json
// snapshot. The table also prints to stderr so interactive runs see the
// numbers without opening the file.
func runScaleOut(path string) error {
	cfg := harness.DefaultScaleConfig()
	rows, err := harness.ScaleOutStudy(os.Stderr, cfg)
	if err != nil {
		return err
	}
	gcfg := harness.DefaultGroupedScaleConfig()
	grows, err := harness.ScaleOutStudy(os.Stderr, gcfg)
	if err != nil {
		return err
	}
	dump := scaleDump{
		Schema:              "eccheck-scale/v1",
		Env:                 scaleEnv(),
		PerRankBytes:        cfg.PerRankBytes,
		BufferBytes:         cfg.BufferSize,
		PipelineDepth:       cfg.PipelineDepth,
		GroupFanIn:          cfg.GroupFanIn,
		LinkLatencyNs:       cfg.LinkLatency.Nanoseconds(),
		LinkGBps:            cfg.LinkGBps,
		Rounds:              cfg.Rounds,
		Rows:                scaleRowsJSON(rows),
		ScalingSlope:        harness.ScalingSlope(rows),
		GroupSize:           gcfg.GroupSize,
		GroupedRows:         scaleRowsJSON(grows),
		GroupedScalingSlope: harness.ScalingSlope(grows),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runScaleSmoke runs the single 64-node point with reduced rounds — the
// `make scale-smoke` CI guard. It fails if the streaming pipeline cannot
// complete a round at 64 nodes or the measurement comes back degenerate.
func runScaleSmoke() error {
	rows, err := harness.ScaleOutStudy(os.Stdout, harness.ScaleConfig{
		NodeCounts:    []int{64},
		PerRankBytes:  32 << 10,
		BufferSize:    8 << 10,
		PipelineDepth: 3,
		GroupFanIn:    8,
		LinkLatency:   20 * time.Microsecond,
		LinkGBps:      12.5,
		Rounds:        2,
		Baseline:      true,
	})
	if err != nil {
		return err
	}
	if len(rows) != 1 || rows[0].Elapsed <= 0 || rows[0].AggMBps <= 0 {
		return fmt.Errorf("scale smoke: degenerate measurement: %+v", rows)
	}
	return nil
}
