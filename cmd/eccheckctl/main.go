// Command eccheckctl is the operator CLI for a running eccheckd: thin
// subcommands over the daemon's /v1 HTTP API.
//
// Usage:
//
//	eccheckctl [-addr http://127.0.0.1:7070] <command> [args]
//
//	register <id> [-tenant t] [-nodes 4] [-gpus 2] [-k 2] [-m 2] [-scale 32]
//	save     <id> [-steps 1]
//	load     <id>
//	fail     <id> -node N [-no-replace]
//	status   <id>
//	health   <id>
//	watch    [-job id] [-count N]
//	readyz
//	list
//	delete   <id>
//	metrics
//
// Every command prints the daemon's JSON response; non-2xx responses exit
// 1 with the daemon's typed error on stderr. watch streams the daemon's
// /v1/events feed line by line until interrupted (or N events with
// -count), prefixing each protection-level transition with LEVEL so a
// chaos drill reads at a glance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"eccheck"
	"eccheck/internal/daemon"
)

func main() {
	os.Exit(run())
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: eccheckctl [-addr URL] register|save|load|fail|status|health|watch|readyz|list|delete|metrics ...")
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:7070", "eccheckd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	cli := daemon.NewClient(*addr)
	ctx := context.Background()

	cmd, args := args[0], args[1:]
	out, err := dispatch(ctx, cli, cmd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if err == errUsage {
			usage()
		}
		return 1
	}
	switch v := out.(type) {
	case string:
		fmt.Print(v)
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	return 0
}

// errUsage marks a malformed command line.
var errUsage = fmt.Errorf("eccheckctl: bad arguments")

// popID splits the job id off a subcommand's arguments.
func popID(args []string) (string, []string, error) {
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		return "", nil, errUsage
	}
	return args[0], args[1:], nil
}

// dispatch runs one subcommand and returns the value to print.
func dispatch(ctx context.Context, cli *daemon.Client, cmd string, args []string) (any, error) {
	switch cmd {
	case "register":
		id, rest, err := popID(args)
		if err != nil {
			return nil, err
		}
		fs := flag.NewFlagSet("register", flag.ContinueOnError)
		spec := daemon.JobSpec{ID: id}
		fs.StringVar(&spec.Tenant, "tenant", "", "quota tenant")
		fs.IntVar(&spec.Nodes, "nodes", 0, "machine count (k+m)")
		fs.IntVar(&spec.GPUsPerNode, "gpus", 0, "GPUs per machine")
		fs.IntVar(&spec.K, "k", 0, "data nodes")
		fs.IntVar(&spec.M, "m", 0, "parity nodes")
		fs.IntVar(&spec.Scale, "scale", 0, "model down-scale factor")
		fs.IntVar(&spec.BufferBytes, "buffer-bytes", 0, "streaming window size")
		fs.BoolVar(&spec.DisableRemote, "no-remote", false, "disable the remote persistence tier")
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		return cli.Register(ctx, spec)
	case "save":
		id, rest, err := popID(args)
		if err != nil {
			return nil, err
		}
		fs := flag.NewFlagSet("save", flag.ContinueOnError)
		steps := fs.Int("steps", 1, "training steps to advance before the checkpoint")
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		return cli.Save(ctx, id, daemon.SaveRequest{Steps: *steps})
	case "load":
		id, _, err := popID(args)
		if err != nil {
			return nil, err
		}
		return cli.Load(ctx, id)
	case "fail":
		id, rest, err := popID(args)
		if err != nil {
			return nil, err
		}
		fs := flag.NewFlagSet("fail", flag.ContinueOnError)
		node := fs.Int("node", -1, "machine to kill")
		noReplace := fs.Bool("no-replace", false, "leave the slot dead instead of refilling it")
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		if *node < 0 {
			return nil, errUsage
		}
		replace := !*noReplace
		return cli.Fail(ctx, id, daemon.FailRequest{Node: *node, Replace: &replace})
	case "status":
		id, _, err := popID(args)
		if err != nil {
			return nil, err
		}
		return cli.Status(ctx, id)
	case "health":
		id, _, err := popID(args)
		if err != nil {
			return nil, err
		}
		return cli.Health(ctx, id)
	case "readyz":
		return cli.Readyz(ctx)
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ContinueOnError)
		job := fs.String("job", "", "stream only this job's events")
		count := fs.Int("count", 0, "stop after N events (0 streams until interrupted)")
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		return "", watch(ctx, cli, *job, *count)
	case "list":
		return cli.List(ctx)
	case "delete":
		id, _, err := popID(args)
		if err != nil {
			return nil, err
		}
		if err := cli.Delete(ctx, id); err != nil {
			return nil, err
		}
		return map[string]string{"deleted": id}, nil
	case "metrics":
		return cli.MetricsText(ctx)
	default:
		return nil, errUsage
	}
}

// watch tails the daemon's /v1/events stream, one JSON event per line.
// Protection-level transitions get a LEVEL prefix ("LEVEL degraded <-
// ok") so the moments that matter stand out in a chaos drill; round and
// stuck events print bare. Ctrl-C detaches cleanly.
func watch(ctx context.Context, cli *daemon.Client, job string, count int) error {
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	seen := 0
	return cli.Watch(ctx, job, func(ev eccheck.HealthEvent) bool {
		raw, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if ev.Kind == "health" {
			fmt.Printf("LEVEL %s <- %s  %s\n", ev.Level, ev.PrevLevel, raw)
		} else {
			fmt.Printf("%s\n", raw)
		}
		seen++
		return count <= 0 || seen < count
	})
}
