package main

import (
	"bufio"
	"context"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"eccheck"
	"eccheck/internal/daemon"
)

// TestHealthSmoke is the observability gate behind `make health-smoke`:
// it boots the real eccheckd binary with JSON logging and the watchdog
// armed, attaches an SSE subscriber to /v1/events, then kills machines
// until the job's protection level walks down to Unprotected — asserting
// the Degraded and Unprotected transitions arrive on the stream, that
// /readyz flips from ready to 503 exactly when the fleet reaches AtRisk,
// and that every line the daemon logged to stderr parses as JSON.
// Skipped under -short; CI runs it as a dedicated step.
func TestHealthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("health smoke exercises a real binary over HTTP; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "eccheckd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build eccheckd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-log-format", "json", "-log-level", "debug", "-watchdog-factor", "8",
		"-drain-timeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start eccheckd: %v", err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// stderr carries only structured logs: collect every line for the
	// JSON-parseability assertion at the end.
	var logMu sync.Mutex
	var logLines []string
	var logWG sync.WaitGroup
	logWG.Add(1)
	go func() {
		defer logWG.Done()
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			logMu.Lock()
			logLines = append(logLines, sc.Text())
			logMu.Unlock()
		}
	}()

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	addr, err := awaitListenLine(lines)
	if err != nil {
		t.Fatalf("daemon never announced its address: %v", err)
	}
	cli := daemon.NewClient("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Subscribe to the event stream before the job exists so the walk's
	// transitions cannot be missed.
	levelCh := make(chan eccheck.HealthEvent, 32)
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		err := cli.Watch(watchCtx, "", func(ev eccheck.HealthEvent) bool {
			if ev.Kind == "health" && ev.Job == "chaos" {
				levelCh <- ev
			}
			return true
		})
		if err != nil {
			t.Errorf("watch: %v", err)
		}
	}()
	nextLevel := func(what string) eccheck.HealthEvent {
		t.Helper()
		select {
		case ev := <-levelCh:
			return ev
		case <-time.After(60 * time.Second):
			t.Fatalf("no %s health event on /v1/events", what)
			return eccheck.HealthEvent{}
		}
	}

	// Register (defaults: 4 nodes, k=2 m=2) and commit one checkpoint.
	// The registration announcement doubles as the subscription handshake.
	spec := daemon.JobSpec{ID: "chaos", Tenant: "smoke", Scale: 32, BufferBytes: 128 << 10, DisableRemote: true}
	if _, err := cli.Register(ctx, spec); err != nil {
		t.Fatalf("register: %v", err)
	}
	if ev := nextLevel("announcement"); ev.Level != eccheck.HealthUnprotected {
		t.Fatalf("announced level %s, want unprotected", ev.Level)
	}
	if _, err := cli.Save(ctx, "chaos", daemon.SaveRequest{Steps: 2}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if ev := nextLevel("OK"); ev.Level != eccheck.HealthOK {
		t.Fatalf("post-save level %s, want ok", ev.Level)
	}
	rz, err := cli.Readyz(ctx)
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	if !rz.Ready {
		t.Fatalf("daemon not ready with a freshly protected job: %+v", rz)
	}

	// Kill machines without replacement until protection is gone.
	noReplace := false
	for _, step := range []struct {
		node  int
		level eccheck.HealthLevel
	}{
		{0, eccheck.HealthDegraded},
		{1, eccheck.HealthAtRisk},
		{2, eccheck.HealthUnprotected},
	} {
		if _, err := cli.Fail(ctx, "chaos", daemon.FailRequest{Node: step.node, Replace: &noReplace}); err != nil {
			t.Fatalf("fail node %d: %v", step.node, err)
		}
		if ev := nextLevel(step.level.String()); ev.Level != step.level {
			t.Fatalf("after killing node %d: stream level %s, want %s", step.node, ev.Level, step.level)
		}
	}
	rz, err = cli.Readyz(ctx)
	if err != nil {
		t.Fatalf("readyz after kills: %v", err)
	}
	if rz.Ready {
		t.Fatalf("daemon still ready with an unprotected job: %+v", rz)
	}
	if rz.Worst != eccheck.HealthUnprotected || rz.Jobs["chaos"] != eccheck.HealthUnprotected {
		t.Fatalf("readyz body %+v, want worst/jobs unprotected", rz)
	}

	// The event stream must survive daemon drain: SIGTERM closes the bus,
	// which ends the Watch cleanly (asserted via watchWG after Wait).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	var tail []string
	for line := range lines {
		tail = append(tail, line)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("eccheckd exited dirty: %v\n%s", err, strings.Join(tail, "\n"))
	}
	if !containsLine(tail, "eccheckd: drained cleanly") {
		t.Fatalf("no clean-drain confirmation in stdout:\n%s", strings.Join(tail, "\n"))
	}
	watchWG.Wait()
	logWG.Wait()

	// Every structured-log line must be machine-parseable JSON carrying
	// level and msg, and the lifecycle must be visible in it.
	logMu.Lock()
	defer logMu.Unlock()
	if len(logLines) == 0 {
		t.Fatal("daemon logged nothing to stderr")
	}
	joined := strings.Join(logLines, "\n")
	for i, line := range logLines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line %d is not JSON: %q (%v)", i, line, err)
		}
		if rec["level"] == nil || rec["msg"] == nil {
			t.Fatalf("stderr line %d lacks level/msg: %q", i, line)
		}
	}
	for _, want := range []string{
		`"msg":"job registered","job":"chaos"`,
		`"msg":"save committed"`,
		`"msg":"node failure injected"`,
		`"msg":"round start"`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("structured logs missing %s", want)
		}
	}
}
