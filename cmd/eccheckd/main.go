// Command eccheckd is the checkpoint-as-a-service daemon: a long-running
// control plane multiplexing many concurrent training jobs — each one an
// eccheck System lifecycle over its own simulated node fleet — behind a
// stdlib HTTP/JSON API, with fleet-wide save-slot admission control and
// per-tenant quotas on host memory and remote-tier bandwidth.
//
// Usage:
//
//	eccheckd [-addr 127.0.0.1:7070] [-max-saves 1]
//	         [-tenant-mem-bytes 2147483648] [-tenant-bw 1.25e9]
//	         [-flight-events 4096] [-watchdog-factor 0]
//	         [-log-level info] [-log-format text]
//	         [-drain-timeout 30s]
//
// The daemon prints "eccheckd listening on ADDR" once the API is up (so
// scripts binding ":0" can scrape the port), serves until SIGTERM or
// SIGINT, then drains gracefully: new work is rejected with 503 while
// in-flight checkpoint rounds get -drain-timeout to finish before the
// fleets are torn down. A clean drain exits 0.
//
// Structured logs go to stderr through log/slog; -log-format json makes
// every line machine-parseable (the health-smoke CI gate asserts this),
// and -log-level debug surfaces per-round and chaos-verdict detail.
// -watchdog-factor N arms each job's stuck-round watchdog: any round
// phase running longer than N× its rolling p99 is flagged live on the
// event stream.
//
// API summary (see DESIGN.md §11 for the full table):
//
//	POST   /v1/jobs            register a job
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       status incl. last save/load reports
//	DELETE /v1/jobs/{id}       unregister
//	POST   /v1/jobs/{id}/save  admission-controlled checkpoint round
//	POST   /v1/jobs/{id}/load  recover + byte-verify latest checkpoint
//	POST   /v1/jobs/{id}/fail  inject a machine failure
//	GET    /v1/jobs/{id}/health  live protection score
//	GET    /v1/events          health/round/stuck event stream (SSE)
//	GET    /metrics            per-job admission/quota/round counters
//	GET    /healthz            liveness ("ok" / 503 "draining")
//	GET    /readyz             readiness (503 when any job is at-risk)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eccheck/internal/daemon"
	"eccheck/internal/obs"
)

func main() {
	os.Exit(run())
}

// newLogger builds the daemon's stderr logger. Routing every diagnostic
// through it keeps stderr uniformly parseable under -log-format json.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("eccheckd: bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("eccheckd: bad -log-format %q (want json or text)", format)
	}
}

func run() int {
	var (
		addr           = flag.String("addr", "127.0.0.1:7070", "HTTP listen address (use :0 for an ephemeral port)")
		maxSaves       = flag.Int("max-saves", 1, "fleet-wide concurrent save-round bound (admission slots)")
		tenantMem      = flag.Int64("tenant-mem-bytes", 0, "per-tenant host-memory quota in bytes (0 = default 2 GiB, negative disables)")
		tenantBW       = flag.Float64("tenant-bw", 0, "per-tenant remote-tier bandwidth quota in bytes/sec (0 = default 1.25e9, negative disables)")
		flightEvents   = flag.Int("flight-events", 4096, "default per-job flight-recorder ring size (negative disables)")
		watchdogFactor = flag.Float64("watchdog-factor", 0, "flag round phases stuck past factor × rolling p99 (0 disables, min 1)")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat      = flag.String("log-format", "text", "log encoding on stderr: text or json")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight rounds on SIGTERM")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	d := daemon.New(daemon.Config{
		MaxConcurrentSaves:  *maxSaves,
		TenantMemoryBytes:   *tenantMem,
		TenantBandwidth:     *tenantBW,
		DefaultFlightEvents: *flightEvents,
		WatchdogFactor:      *watchdogFactor,
		Logger:              logger,
	})
	srv, err := obs.ServeMux(*addr, d.Mux())
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	fmt.Printf("eccheckd listening on %s\n", srv.Addr())
	logger.Info("eccheckd up", "addr", srv.Addr(), "watchdog_factor", *watchdogFactor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	// The drain lines stay on stdout next to the listen announcement —
	// they are the script-scraped lifecycle protocol; stderr carries only
	// structured logs.
	fmt.Printf("eccheckd: %s, draining (timeout %s)\n", got, *drainTimeout)
	logger.Info("draining", "signal", got.String(), "timeout", *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := d.Shutdown(ctx)
	closeErr := srv.Close()
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr)
		return 1
	}
	if closeErr != nil {
		logger.Error("close failed", "err", closeErr)
		return 1
	}
	fmt.Println("eccheckd: drained cleanly")
	return 0
}
