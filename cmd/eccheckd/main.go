// Command eccheckd is the checkpoint-as-a-service daemon: a long-running
// control plane multiplexing many concurrent training jobs — each one an
// eccheck System lifecycle over its own simulated node fleet — behind a
// stdlib HTTP/JSON API, with fleet-wide save-slot admission control and
// per-tenant quotas on host memory and remote-tier bandwidth.
//
// Usage:
//
//	eccheckd [-addr 127.0.0.1:7070] [-max-saves 1]
//	         [-tenant-mem-bytes 2147483648] [-tenant-bw 1.25e9]
//	         [-flight-events 4096] [-drain-timeout 30s]
//
// The daemon prints "eccheckd listening on ADDR" once the API is up (so
// scripts binding ":0" can scrape the port), serves until SIGTERM or
// SIGINT, then drains gracefully: new work is rejected with 503 while
// in-flight checkpoint rounds get -drain-timeout to finish before the
// fleets are torn down. A clean drain exits 0.
//
// API summary (see DESIGN.md §11 for the full table):
//
//	POST   /v1/jobs            register a job
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       status incl. last save/load reports
//	DELETE /v1/jobs/{id}       unregister
//	POST   /v1/jobs/{id}/save  admission-controlled checkpoint round
//	POST   /v1/jobs/{id}/load  recover + byte-verify latest checkpoint
//	POST   /v1/jobs/{id}/fail  inject a machine failure
//	GET    /metrics            per-job admission/quota/round counters
//	GET    /healthz            liveness ("ok" / 503 "draining")
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eccheck/internal/daemon"
	"eccheck/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "HTTP listen address (use :0 for an ephemeral port)")
		maxSaves     = flag.Int("max-saves", 1, "fleet-wide concurrent save-round bound (admission slots)")
		tenantMem    = flag.Int64("tenant-mem-bytes", 0, "per-tenant host-memory quota in bytes (0 = default 2 GiB, negative disables)")
		tenantBW     = flag.Float64("tenant-bw", 0, "per-tenant remote-tier bandwidth quota in bytes/sec (0 = default 1.25e9, negative disables)")
		flightEvents = flag.Int("flight-events", 0, "default per-job flight-recorder ring size (0 = default 4096, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight rounds on SIGTERM")
	)
	flag.Parse()

	d := daemon.New(daemon.Config{
		MaxConcurrentSaves:  *maxSaves,
		TenantMemoryBytes:   *tenantMem,
		TenantBandwidth:     *tenantBW,
		DefaultFlightEvents: *flightEvents,
	})
	srv, err := obs.ServeMux(*addr, d.Mux())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("eccheckd listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("eccheckd: %s, draining (timeout %s)\n", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := d.Shutdown(ctx)
	closeErr := srv.Close()
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "eccheckd: drain: %v\n", drainErr)
		return 1
	}
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "eccheckd: close: %v\n", closeErr)
		return 1
	}
	fmt.Println("eccheckd: drained cleanly")
	return 0
}
