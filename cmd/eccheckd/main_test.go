package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"eccheck/internal/daemon"
)

// TestDaemonSmoke is the end-to-end service gate behind `make daemon-smoke`:
// it builds the real eccheckd binary, boots it on an ephemeral loopback
// port, registers two jobs, drives concurrent saves through the single
// fleet-wide save slot (asserting the serialization is visible in the
// /metrics per-job labels), injects a machine failure, recovers with a
// byte-verified load, and finally SIGTERMs the daemon expecting a clean
// drain and exit 0. Skipped under -short; CI runs it as a dedicated step.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke exercises a real binary over HTTP; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "eccheckd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build eccheckd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-saves", "1", "-drain-timeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start eccheckd: %v", err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// Scrape the ephemeral listen address, then keep draining output so
	// the final "drained cleanly" line is captured.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	addr, err := awaitListenLine(lines)
	if err != nil {
		t.Fatalf("daemon never announced its address: %v", err)
	}
	cli := daemon.NewClient("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	if !cli.Healthy(ctx) {
		t.Fatalf("daemon not healthy at %s", addr)
	}

	// Two concurrent jobs sharing one save slot.
	for _, id := range []string{"smoke-a", "smoke-b"} {
		spec := daemon.JobSpec{ID: id, Tenant: "smoke", Scale: 32, BufferBytes: 128 << 10, DisableRemote: true}
		if _, err := cli.Register(ctx, spec); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	var wg sync.WaitGroup
	saveErrs := make(chan error, 2)
	for _, id := range []string{"smoke-a", "smoke-b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := cli.Save(ctx, id, daemon.SaveRequest{Steps: 2})
			if err != nil {
				saveErrs <- fmt.Errorf("save %s: %w", id, err)
				return
			}
			if resp.Report.Version != 1 {
				saveErrs <- fmt.Errorf("save %s: version %d, want 1", id, resp.Report.Version)
			}
		}(id)
	}
	wg.Wait()
	close(saveErrs)
	for err := range saveErrs {
		t.Fatal(err)
	}

	// The serialization must be observable: each job got exactly one slot
	// grant and finished exactly one save round, under its own label.
	metrics, err := cli.MetricsText(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, id := range []string{"smoke-a", "smoke-b"} {
		for _, want := range []string{
			fmt.Sprintf(`eccheckd_save_slot_grants_total{job=%q} 1`, id),
			fmt.Sprintf(`eccheckd_job_rounds_finished_total{job=%q,op="save"} 1`, id),
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("/metrics missing %s", want)
			}
		}
	}
	if t.Failed() {
		t.Fatalf("full /metrics:\n%s", metrics)
	}

	// Chaos: kill a machine in job A, then recover with byte verification.
	if _, err := cli.Fail(ctx, "smoke-a", daemon.FailRequest{Node: 1}); err != nil {
		t.Fatalf("fail node: %v", err)
	}
	load, err := cli.Load(ctx, "smoke-a")
	if err != nil {
		t.Fatalf("load after failure: %v", err)
	}
	if load.VerifiedStep != 2 {
		t.Fatalf("recovered step %d, want 2", load.VerifiedStep)
	}
	if len(load.Report.MissingChunks) == 0 {
		t.Fatalf("load decoded nothing despite an injected failure")
	}
	st, err := cli.Status(ctx, "smoke-a")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Saves != 1 || st.Loads != 1 {
		t.Fatalf("smoke-a counters %d saves / %d loads, want 1/1", st.Saves, st.Loads)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	var tail []string
	for line := range lines {
		tail = append(tail, line)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("eccheckd exited dirty: %v\n%s", err, strings.Join(tail, "\n"))
	}
	if !containsLine(tail, "eccheckd: drained cleanly") {
		t.Fatalf("no clean-drain confirmation in output:\n%s", strings.Join(tail, "\n"))
	}
}

// awaitListenLine waits for the daemon's listen announcement and returns
// the address.
func awaitListenLine(lines <-chan string) (string, error) {
	const prefix = "eccheckd listening on "
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return "", io.ErrUnexpectedEOF
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
			}
		case <-deadline:
			return "", context.DeadlineExceeded
		}
	}
}

// containsLine reports whether any captured line matches want exactly.
func containsLine(lines []string, want string) bool {
	for _, l := range lines {
		if strings.TrimSpace(l) == want {
			return true
		}
	}
	return false
}
