// Command eccheck-sim runs an end-to-end simulated training job with
// ECCheck checkpointing and injected machine failures, on the functional
// layer: real state dicts, real erasure coding, real (in-process) network
// transfers. It demonstrates the full life cycle the paper describes —
// train, checkpoint, fail, recover, resume — and verifies byte-exact state
// recovery after every failure.
//
// Usage:
//
// After every checkpoint it prints the round's phase breakdown (the same
// partition SaveReport.Phases carries), and -metrics dumps the system's
// full metric registry in Prometheus exposition format on exit.
//
// Usage:
//
//	eccheck-sim [-nodes 4] [-gpus 2] [-k 2] [-m 2] [-iters 30]
//	            [-ckpt-every 5] [-fail-at 12,23] [-scale 32] [-seed 1]
//	            [-metrics] [-trace-out run.trace.json] [-debug-addr :6060]
//
// -trace-out records every protocol event in the flight recorder and
// writes the run's timeline as Chrome trace_event JSON on exit — open it
// in Perfetto (ui.perfetto.dev) or chrome://tracing. -debug-addr serves
// /metrics, /trace and /debug/pprof live while the simulation runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"eccheck"
)

// printPhases renders a one-round phase table in pipeline order, skipping
// phases the round did not exercise (e.g. persist on non-persisted rounds).
func printPhases(kind string, order []string, phases map[string]time.Duration, total time.Duration) {
	fmt.Printf("          %-12s %10s %6s\n", kind+" phase", "time", "share")
	for _, ph := range order {
		d := phases[ph]
		if d <= 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(d) / float64(total)
		}
		fmt.Printf("          %-12s %10s %5.1f%%\n", ph, d.Round(10*time.Microsecond), share)
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes     = flag.Int("nodes", 4, "machine count (k+m)")
		gpus      = flag.Int("gpus", 2, "GPUs per machine")
		k         = flag.Int("k", 2, "data nodes")
		m         = flag.Int("m", 2, "parity nodes")
		iters     = flag.Int("iters", 30, "training iterations to simulate")
		ckptEvery = flag.Int("ckpt-every", 5, "checkpoint interval in iterations")
		failAtRaw = flag.String("fail-at", "12,23", "comma-separated iterations at which random failures strike")
		scale     = flag.Int("scale", 32, "model down-scale factor (1 = full size)")
		seed      = flag.Int64("seed", 1, "random seed for failure injection")
		metrics   = flag.Bool("metrics", false, "dump the full metric registry (Prometheus text format) on exit")
		traceOut  = flag.String("trace-out", "", "write the run's flight-recorder timeline as Chrome trace JSON to this file on exit")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	failAt := map[int]bool{}
	if *failAtRaw != "" {
		for _, part := range strings.Split(*failAtRaw, ",") {
			it, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -fail-at entry %q: %v\n", part, err)
				return 2
			}
			failAt[it] = true
		}
	}

	flightEvents := 0
	if *traceOut != "" || *debugAddr != "" {
		// Large enough to hold a full default run (rounds × phase spans ×
		// per-peer transfers) without the ring wrapping.
		flightEvents = 1 << 16
	}
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes:        *nodes,
		GPUsPerNode:  *gpus,
		TPDegree:     *gpus,
		PPStages:     *nodes,
		K:            *k,
		M:            *m,
		BufferSize:   256 << 10,
		FlightEvents: flightEvents,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() {
		if err := sys.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *debugAddr != "" {
		dbg, err := sys.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer dbg.Close()
		fmt.Printf("debug server: http://%s (/metrics /trace /debug/pprof)\n", dbg.Addr())
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := sys.WriteTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("trace written to %s (%d events) — open in ui.perfetto.dev\n",
				*traceOut, sys.FlightRecorder().Len())
		}()
	}

	fmt.Printf("cluster: %d nodes x %d GPUs, k=%d data nodes %v, m=%d parity nodes %v\n",
		*nodes, *gpus, *k, sys.DataNodes(), *m, sys.ParityNodes())

	cfg := eccheck.ModelZoo()[0] // GPT-2 1.6B
	opt := eccheck.NewBuildOptions()
	opt.Scale = *scale
	opt.Seed = 1000
	dicts, err := eccheck.BuildClusterStateDicts(cfg, sys.Topology(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("model: %s at 1/%d scale, %d workers, shard ≈ %.1f MB\n",
		cfg.Name, *scale, len(dicts), float64(dicts[0].TensorBytes())/1e6)

	rng := rand.New(rand.NewSource(*seed))
	ctx := context.Background()
	lastCkptIter := 0
	iteration := 0

	for iteration < *iters {
		iteration++
		// "Train": deterministically mutate every shard.
		for rank, sd := range dicts {
			entries := sd.TensorEntries()
			ts := entries[iteration%len(entries)].Tensor
			ts.Data()[(iteration*31+rank)%ts.NumBytes()] ^= byte(iteration)
			sd.SetMeta("iteration", eccheck.IntValue(int64(iteration)))
		}

		if iteration%*ckptEvery == 0 {
			rep, err := sys.Save(ctx, dicts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "save at iter %d: %v\n", iteration, err)
				return 1
			}
			lastCkptIter = iteration
			fmt.Printf("iter %3d: checkpoint v%d in %v (packet %.1f MB, small %d B, remote=%v)\n",
				iteration, rep.Version, rep.Elapsed.Round(10*time.Microsecond),
				float64(rep.PacketBytes)/1e6, rep.SmallBytes, rep.RemotePersisted)
			printPhases("save", eccheck.SavePhases(), rep.Phases, rep.Elapsed)
		}

		if failAt[iteration] {
			delete(failAt, iteration) // each injected failure strikes once
			// Fail up to m random distinct machines.
			count := 1 + rng.Intn(*m)
			alive := sys.AliveNodes()
			rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
			victims := alive[:count]
			fmt.Printf("iter %3d: FAILURE of node(s) %v\n", iteration, victims)
			for _, v := range victims {
				if err := sys.FailNode(v); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				if err := sys.ReplaceNode(v); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
			}
			recovered, lrep, err := sys.Load(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "recovery failed: %v\n", err)
				return 1
			}
			fmt.Printf("iter %3d: recovered v%d via %s workflow (missing chunks %v) in %v\n",
				iteration, lrep.Version, lrep.Workflow, lrep.MissingChunks, lrep.Elapsed)
			printPhases("load", eccheck.LoadPhases(), lrep.Phases, lrep.Elapsed)

			// Verify the recovered state matches the last checkpoint, then
			// roll back and resume.
			for rank := range recovered {
				v, ok := recovered[rank].Meta("iteration")
				if !ok {
					fmt.Fprintf(os.Stderr, "rank %d missing iteration meta\n", rank)
					return 1
				}
				it, _ := v.AsInt()
				if int(it) != lastCkptIter {
					fmt.Fprintf(os.Stderr, "rank %d recovered iteration %d, want %d\n", rank, it, lastCkptIter)
					return 1
				}
			}
			dicts = recovered
			iteration = lastCkptIter
			fmt.Printf("iter %3d: training resumes from iteration %d\n", iteration, lastCkptIter)
		}
	}
	fmt.Printf("done: %d iterations, final checkpoint version %d\n", *iters, sys.Version())
	if *metrics {
		fmt.Println()
		if err := sys.Metrics().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
