// Command doclint enforces the documentation contract of the public API:
// every exported identifier in the packages it is pointed at must carry a
// doc comment. It exists because the root eccheck package IS the operator
// surface — an undocumented export there is a hole in the manual.
//
// Usage:
//
//	doclint [package-dir ...]   # default: .
//
// Exits non-zero listing every exported const, var, func, type, method and
// struct field group that lacks a doc comment. Grouped declarations
// (const/var blocks) pass if either the group or the individual spec is
// documented; struct fields and interface methods are exempt, as Go's own
// conventions leave those to the enclosing type's comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var problems []string
	for _, dir := range dirs {
		p, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments\n", len(problems))
		return 1
	}
	return 0
}

// lintDir parses one package directory (tests excluded) and returns one
// line per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doclint: %s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			lintFile(file, report)
		}
	}
	return out, nil
}

func lintFile(file *ast.File, report func(token.Pos, string, string)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				if recv, exported := recvName(d.Recv); !exported {
					continue // methods on unexported types are internal
				} else {
					report(d.Pos(), "method", recv+"."+d.Name.Name)
				}
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
}

// lintGenDecl checks a const/var/type block: a doc comment on the block
// covers every spec inside it; otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{
		token.CONST: "const", token.VAR: "var", token.TYPE: "type",
	}[d.Tok]
	if kind == "" {
		return // imports
	}
	blockDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDocumented && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// recvName extracts the receiver's type name and whether it is exported.
func recvName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, id.IsExported()
	}
	return "", false
}
