// Command doclint enforces the documentation contract of the public API:
// every exported identifier in the packages it is pointed at must carry a
// doc comment. It exists because the root eccheck package IS the operator
// surface — an undocumented export there is a hole in the manual.
//
// Usage:
//
//	doclint [package-dir ...]   # default: .
//
// Exits non-zero listing every exported const, var, func, type, method and
// struct field group that lacks a doc comment. Grouped declarations
// (const/var blocks) pass if either the group or the individual spec is
// documented; struct fields and interface methods are exempt, as Go's own
// conventions leave those to the enclosing type's comment.
//
// Beyond presence, doclint enforces the Go doc convention that a comment
// begins with the identifier it documents ("Config holds ...", optionally
// after a leading article), because go doc and pkg.go.dev render comments
// detached from their declaration — a comment that doesn't name its subject
// is ambiguous there. Block comments on grouped const/var declarations are
// exempt from the name check, since one comment covers several names.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var problems []string
	for _, dir := range dirs {
		p, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) with missing or malformed doc comments\n", len(problems))
		return 1
	}
	return 0
}

// lintDir parses one package directory (tests excluded) and returns one
// line per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doclint: %s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, kind, name, problem string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s %s",
			filepath.ToSlash(p.Filename), p.Line, kind, name, problem))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			lintFile(file, report)
		}
	}
	return out, nil
}

func lintFile(file *ast.File, report func(token.Pos, string, string, string)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			kind, name := "function", d.Name.Name
			if d.Recv != nil {
				recv, exported := recvName(d.Recv)
				if !exported {
					continue // methods on unexported types are internal
				}
				kind, name = "method", recv+"."+d.Name.Name
			}
			if d.Doc == nil {
				report(d.Pos(), kind, name, "has no doc comment")
			} else if !leadsWithName(d.Doc, d.Name.Name) {
				report(d.Pos(), kind, name, nameProblem(d.Name.Name))
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
}

// lintGenDecl checks a const/var/type block: a doc comment on the block
// covers every spec inside it; otherwise each exported spec needs its own.
// Specs carrying their own doc comment must lead with their name; block
// comments are exempt from the name check since one comment covers several
// names.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string, string)) {
	kind := map[token.Token]string{
		token.CONST: "const", token.VAR: "var", token.TYPE: "type",
	}[d.Tok]
	if kind == "" {
		return // imports
	}
	blockDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			switch {
			case s.Doc != nil:
				// A spec-level comment must name its subject, even inside
				// a documented block.
				if !leadsWithName(s.Doc, s.Name.Name) {
					report(s.Pos(), kind, s.Name.Name, nameProblem(s.Name.Name))
				}
			case blockDocumented || s.Comment != nil:
				// Covered by the block comment or a trailing line comment.
			default:
				report(s.Pos(), kind, s.Name.Name, "has no doc comment")
			}
			// An unparenthesised `type X ...` attaches its comment to the
			// GenDecl, not the spec: apply the name check there too.
			if s.Doc == nil && d.Doc != nil && len(d.Specs) == 1 && !d.Lparen.IsValid() {
				if !leadsWithName(d.Doc, s.Name.Name) {
					report(s.Pos(), kind, s.Name.Name, nameProblem(s.Name.Name))
				}
			}
		case *ast.ValueSpec:
			if s.Doc != nil && len(s.Names) == 1 && s.Names[0].IsExported() {
				if !leadsWithName(s.Doc, s.Names[0].Name) {
					report(s.Pos(), kind, s.Names[0].Name, nameProblem(s.Names[0].Name))
				}
				continue
			}
			if blockDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name, "has no doc comment")
				}
			}
		}
	}
}

// nameProblem is the report suffix for a comment that fails leadsWithName.
func nameProblem(name string) string {
	return fmt.Sprintf("has a doc comment that does not begin with %q", name)
}

// leadsWithName reports whether the doc comment's first word is the
// identifier it documents, per the Go doc convention. A leading article
// ("A", "An", "The") and a "Deprecated:" marker are accepted before the
// name, matching what golint and pkg.go.dev tolerate.
func leadsWithName(doc *ast.CommentGroup, name string) bool {
	text := strings.TrimSpace(doc.Text())
	for _, prefix := range []string{"Deprecated:", "A ", "An ", "The "} {
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			text = strings.TrimSpace(rest)
			break
		}
	}
	rest, ok := strings.CutPrefix(text, name)
	if !ok {
		return false
	}
	// The name must be a whole word: "Save" must not satisfy "SaveAsync".
	return rest == "" || !isWordChar(rune(rest[0]))
}

// isWordChar reports whether r can continue a Go identifier, which is what
// delimits the leading word of a doc comment.
func isWordChar(r rune) bool {
	return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')
}

// recvName extracts the receiver's type name and whether it is exported.
func recvName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, id.IsExported()
	}
	return "", false
}
