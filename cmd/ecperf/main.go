// Command ecperf measures the raw Cauchy Reed-Solomon coding throughput of
// this machine: encoding and reconstruction bandwidth across (k, m)
// configurations and thread-pool widths, the numbers that size ECCheck's
// EncodeRate parameter.
//
// Usage:
//
//	ecperf [-size 67108864] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eccheck/internal/ecpool"
	"eccheck/internal/erasure"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		size  = flag.Int("size", 64<<20, "chunk size in bytes")
		iters = flag.Int("iters", 5, "iterations per measurement")
	)
	flag.Parse()

	fmt.Printf("%-8s %-8s %10s %14s\n", "code", "threads", "xors", "encode GB/s")
	for _, km := range [][2]int{{2, 2}, {4, 2}, {8, 4}} {
		code, err := erasure.New(km[0], km[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		chunk := code.ChunkAlign(*size)
		data := make([][]byte, km[0])
		parity := make([][]byte, km[1])
		for i := range data {
			data[i] = make([]byte, chunk)
			for j := 0; j < chunk; j += 4096 {
				data[i][j] = byte(i + j)
			}
		}
		for i := range parity {
			parity[i] = make([]byte, chunk)
		}

		for _, threads := range []int{1, 2, 4, 8} {
			pool := ecpool.NewPool(threads)
			// Warm up once, then measure.
			if err := pool.Encode(code, data, parity); err != nil {
				fmt.Fprintln(os.Stderr, err)
				pool.Close()
				return 1
			}
			start := time.Now()
			for i := 0; i < *iters; i++ {
				if err := pool.Encode(code, data, parity); err != nil {
					fmt.Fprintln(os.Stderr, err)
					pool.Close()
					return 1
				}
			}
			elapsed := time.Since(start)
			pool.Close()
			processed := float64(*iters) * float64(km[0]) * float64(chunk)
			gbps := processed / elapsed.Seconds() / 1e9
			fmt.Printf("(%d,%d)   %-8d %10d %14.2f\n",
				km[0], km[1], threads, code.EncodeXORCount(), gbps)
		}
	}
	return 0
}
