// Command ecperf measures the raw Cauchy Reed-Solomon coding throughput of
// this machine: encoding bandwidth across (k, m) configurations and
// thread-pool widths, the numbers that size ECCheck's EncodeRate parameter.
// Alongside throughput it reports steady-state allocation per encode
// (allocs/op and B/op from runtime.MemStats deltas), the signal the
// zero-allocation hot path is gated on.
//
// Usage:
//
//	ecperf [-size 67108864] [-iters 5] [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"eccheck/internal/ecpool"
	"eccheck/internal/erasure"
)

// row is one measurement: a (k, m) code at one pool width.
type row struct {
	K             int     `json:"k"`
	M             int     `json:"m"`
	Threads       int     `json:"threads"`
	ChunkBytes    int     `json:"chunk_bytes"`
	XORs          int     `json:"xors"`
	GBPerS        float64 `json:"gb_per_s"`
	AllocsPerOp   uint64  `json:"allocs_per_op"`
	AllocBytesPer uint64  `json:"alloc_bytes_per_op"`
}

// dump is the machine-readable report (-json).
type dump struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Rows      []row  `json:"rows"`
}

func main() {
	os.Exit(run())
}

// measure runs fn iters times and returns (elapsed, allocs/op, bytes/op).
// A GC first makes the MemStats deltas reflect steady-state allocation.
func measure(iters int, fn func() error) (time.Duration, uint64, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, (m1.Mallocs - m0.Mallocs) / uint64(iters), (m1.TotalAlloc - m0.TotalAlloc) / uint64(iters), nil
}

func run() int {
	var (
		size     = flag.Int("size", 64<<20, "chunk size in bytes")
		iters    = flag.Int("iters", 5, "iterations per measurement")
		jsonPath = flag.String("json", "", "also write the report as JSON to this file")
	)
	flag.Parse()

	var rows []row
	fmt.Printf("%-8s %-8s %10s %14s %12s %12s\n",
		"code", "threads", "xors", "encode GB/s", "allocs/op", "B/op")
	for _, km := range [][2]int{{2, 2}, {4, 2}, {8, 4}} {
		code, err := erasure.New(km[0], km[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		chunk := code.ChunkAlign(*size)
		data := make([][]byte, km[0])
		parity := make([][]byte, km[1])
		for i := range data {
			data[i] = make([]byte, chunk)
			for j := 0; j < chunk; j += 4096 {
				data[i][j] = byte(i + j)
			}
		}
		for i := range parity {
			parity[i] = make([]byte, chunk)
		}

		for _, threads := range []int{1, 2, 4, 8} {
			pool := ecpool.NewPool(threads)
			// Warm up once, then measure.
			if err := pool.Encode(code, data, parity); err != nil {
				fmt.Fprintln(os.Stderr, err)
				pool.Close()
				return 1
			}
			elapsed, allocs, bytes, err := measure(*iters, func() error {
				return pool.Encode(code, data, parity)
			})
			pool.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			processed := float64(*iters) * float64(km[0]) * float64(chunk)
			gbps := processed / elapsed.Seconds() / 1e9
			fmt.Printf("(%d,%d)   %-8d %10d %14.2f %12d %12d\n",
				km[0], km[1], threads, code.EncodeXORCount(), gbps, allocs, bytes)
			rows = append(rows, row{
				K: km[0], M: km[1], Threads: threads, ChunkBytes: chunk,
				XORs: code.EncodeXORCount(), GBPerS: gbps,
				AllocsPerOp: allocs, AllocBytesPer: bytes,
			})
		}
	}

	if *jsonPath != "" {
		d := dump{
			Schema:    "ecperf/v1",
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			Rows:      rows,
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
