package eccheck_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"eccheck"
)

// TestPublicAPISaveAsync drives the snapshot-and-drain path through the
// public surface: the handle's report partitions stall vs overlap, the
// committed checkpoint round-trips, and a second handle waits its turn.
func TestPublicAPISaveAsync(t *testing.T) {
	sys, dicts := smallSystem(t)
	ctx := context.Background()

	h, err := sys.SaveAsync(ctx, dicts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || sys.Version() != 1 {
		t.Errorf("version = %d/%d, want 1", rep.Version, sys.Version())
	}
	if rep.StallNs <= 0 || rep.StallNs+rep.OverlapNs != rep.Elapsed {
		t.Errorf("stall %v + overlap %v != elapsed %v", rep.StallNs, rep.OverlapNs, rep.Elapsed)
	}

	got, lr, err := sys.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Version != 1 {
		t.Errorf("loaded version %d", lr.Version)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Errorf("rank %d state differs after async round-trip", rank)
		}
	}

	// The async phase accounting exposes the new "stage" phase name.
	phases := eccheck.SavePhases()
	found := false
	for _, ph := range phases {
		if ph == "stage" {
			found = true
		}
	}
	if !found {
		t.Errorf("SavePhases() = %v, want to include \"stage\"", phases)
	}
}

// TestPublicAPICloseDuringSave closes a system while a save is in flight;
// every outcome must be typed — committed before Close, or a lifecycle
// error — and Close itself must report thrown-away work.
func TestPublicAPICloseDuringSave(t *testing.T) {
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes:       4,
		GPUsPerNode: 2,
		TPDegree:    2,
		PPStages:    4,
		K:           2,
		M:           2,
		BufferSize:  64 << 10,
		Chaos:       &eccheck.ChaosPlan{Seed: 7, Latency: 3 * time.Millisecond},
		OpTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 42
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	h, err := sys.SaveAsync(ctx, dicts)
	if err != nil {
		t.Fatal(err)
	}
	closeErr := sys.Close()
	select {
	case <-h.Done():
	default:
		t.Fatal("Close returned while the drain was still running")
	}
	if err := h.Err(); err == nil {
		// The drain won the race and committed: Close has nothing to report.
		if closeErr != nil {
			t.Errorf("round committed but Close() = %v", closeErr)
		}
	} else {
		if !errors.Is(err, eccheck.ErrSaveAborted) {
			t.Errorf("aborted round Err() = %v, want ErrSaveAborted", err)
		}
		if !errors.Is(closeErr, eccheck.ErrSaveAborted) {
			t.Errorf("Close() = %v, want error wrapping ErrSaveAborted", closeErr)
		}
	}
	if _, err := sys.Save(ctx, dicts); !errors.Is(err, eccheck.ErrClosed) {
		t.Errorf("Save after Close = %v, want ErrClosed", err)
	}
}
