package eccheck_test

import (
	"context"
	"testing"
	"time"

	"eccheck"
)

// TestPublicAPIPartialRestore drives the lazy-restore surface: LoadPartial
// returns exactly the requested ranks, byte-identical to the checkpoint,
// for strictly fewer fetched bytes than a full Load.
func TestPublicAPIPartialRestore(t *testing.T) {
	sys, dicts := smallSystem(t)
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	_, full, err := sys.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}

	got, rep, err := sys.LoadPartial(ctx, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("returned %d ranks, want 2", len(got))
	}
	for _, rank := range []int{0, 5} {
		if got[rank] == nil || !got[rank].Equal(dicts[rank]) {
			t.Errorf("rank %d: recovered dict differs", rank)
		}
	}
	if rep.Workflow != "partial" {
		t.Errorf("workflow = %q, want partial on a healthy fleet", rep.Workflow)
	}
	if rep.BytesFetched <= 0 || rep.BytesFetched >= full.BytesFetched {
		t.Errorf("partial fetched %d bytes, full %d — want strictly fewer", rep.BytesFetched, full.BytesFetched)
	}
}

// TestPublicAPIPrefetchNode warms a replacement node and verifies the next
// recovery runs the pure replacement workflow.
func TestPublicAPIPrefetchNode(t *testing.T) {
	sys, dicts := smallSystem(t)
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	victim := sys.DataNodes()[0]
	if err := sys.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := sys.ReplaceNode(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.PrefetchNode(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlreadyIntact || rep.Segments == 0 {
		t.Errorf("prefetch report = %+v, want a rebuild", rep)
	}
	_, lrep, err := sys.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Workflow != "replacement" || len(lrep.MissingChunks) != 0 {
		t.Errorf("post-prefetch load = {%q, missing %v}, want pure replacement",
			lrep.Workflow, lrep.MissingChunks)
	}
}

// TestPublicAPILoadBudget pins the soft-SLO contract at the root surface.
func TestPublicAPILoadBudget(t *testing.T) {
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes:        4,
		GPUsPerNode:  2,
		TPDegree:     2,
		PPStages:     4,
		K:            2,
		M:            2,
		BufferSize:   64 << 10,
		LoadBudget:   time.Nanosecond,
		FlightEvents: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sys.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 42
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		t.Fatal(err)
	}
	got, rep, err := sys.Load(ctx)
	if err != nil {
		t.Fatalf("budget overrun must not fail the restore: %v", err)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Errorf("rank %d: recovered dict differs", rank)
		}
	}
	if rep.Budget != time.Nanosecond || !rep.DeadlineExceeded {
		t.Errorf("budget verdict = {%v, %v}, want {1ns, true}", rep.Budget, rep.DeadlineExceeded)
	}
	if len(rep.Postmortem) == 0 {
		t.Error("budget miss must attach the flight-recorder tail")
	}
}
