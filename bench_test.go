// Benchmarks regenerating every table and figure of the paper's evaluation
// (go test -bench=. -benchmem). Each BenchmarkFigNN/BenchmarkTableI runs
// the corresponding harness experiment; custom metrics report the headline
// quantities (seconds, rates, speedups) next to the usual ns/op.
package eccheck_test

import (
	"context"
	"testing"

	"eccheck"
	"eccheck/internal/harness"
)

func BenchmarkTableIModelSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableI(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkFig3RecoveryRate(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig3(nil)
		if err != nil {
			b.Fatal(err)
		}
		mid := pts[len(pts)/2]
		gap = mid.Erasure - mid.Replication
	}
	b.ReportMetric(gap, "rate-gap@p")
}

func BenchmarkFig4SerializationOverhead(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig4(nil)
		if err != nil {
			b.Fatal(err)
		}
		share = pts[len(pts)-1].SerializationShare
	}
	b.ReportMetric(100*share, "ser-share-%@max-bw")
}

func BenchmarkFig10CheckpointTime(b *testing.B) {
	var speedup, vsBase3 float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig10(nil)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[1] // GPT-2 5.3B
		speedup = r.Total["base1"].Seconds() / r.Total["eccheck"].Seconds()
		vsBase3 = r.Total["eccheck"].Seconds() / r.Total["base3"].Seconds()
	}
	b.ReportMetric(speedup, "speedup-vs-base1")
	b.ReportMetric(vsBase3, "cost-vs-base3")
}

func BenchmarkFig11Breakdown(b *testing.B) {
	var step3Share float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig11(nil)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[1]
		total := r.Step1 + r.Step2 + r.Step3
		step3Share = r.Step3.Seconds() / total.Seconds()
	}
	b.ReportMetric(100*step3Share, "step3-share-%")
}

func BenchmarkFig12IterationOverhead(b *testing.B) {
	var ecOverhead float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig12(nil)
		if err != nil {
			b.Fatal(err)
		}
		hf := pts[len(pts)-1]
		base := pts[0].AvgIteration["eccheck"].Seconds()
		ecOverhead = (hf.AvgIteration["eccheck"].Seconds() - base) / base
	}
	b.ReportMetric(100*ecOverhead, "ec-overhead-%@interval5")
}

func BenchmarkFig13Recovery(b *testing.B) {
	var speedupA, speedupB float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig13(nil)
		if err != nil {
			b.Fatal(err)
		}
		a := res.ScenarioA[1]
		speedupA = a.Resume["base1"].Seconds() / a.Resume["eccheck"].Seconds()
		sb := res.ScenarioB[1]
		speedupB = sb.Resume["base1"].Seconds() / sb.Resume["eccheck"].Seconds()
	}
	b.ReportMetric(speedupA, "recovery-speedup-13a")
	b.ReportMetric(speedupB, "recovery-speedup-13b")
}

func BenchmarkFig14Scalability(b *testing.B) {
	var base1Growth, ecGrowth float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig14(nil)
		if err != nil {
			b.Fatal(err)
		}
		base1Growth = rows[3].Total["base1"].Seconds() / rows[0].Total["base1"].Seconds()
		ecGrowth = rows[3].Total["eccheck"].Seconds() / rows[0].Total["eccheck"].Seconds()
	}
	b.ReportMetric(base1Growth, "base1-growth-4to32")
	b.ReportMetric(ecGrowth, "eccheck-growth-4to32")
}

func BenchmarkFig15FaultTolerance(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig15(nil)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1] // n=64, p=0.2
		gap = last.Erasure - last.Replication
	}
	b.ReportMetric(gap, "rate-gap@n64-p0.2")
}

func BenchmarkAblations(b *testing.B) {
	if testing.Short() {
		b.Skip("full-size ablation sweep; run without -short")
	}
	var pipelineGain float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Ablations(nil)
		if err != nil {
			b.Fatal(err)
		}
		pipelineGain = res.SequentialStep3.Seconds() / res.PipelinedStep3.Seconds()
	}
	b.ReportMetric(pipelineGain, "pipeline-gain")
}

// BenchmarkCommVolume verifies and times the §V-F closed form: the plan's
// total communication volume equals m·W packets.
func BenchmarkCommVolume(b *testing.B) {
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 4, TPDegree: 4, PPStages: 4, K: 2, M: 2,
		DisableRemote: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(sys.DataNodes()) + len(sys.ParityNodes()); got != 4 {
			b.Fatal("bad plan")
		}
	}
}

// BenchmarkFunctionalSave measures the real distributed save path
// (encode + XOR reduce + P2P over the in-process transport) end to end.
func BenchmarkFunctionalSave(b *testing.B) {
	if testing.Short() {
		b.Skip("full-size distributed save; run without -short")
	}
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 2, TPDegree: 2, PPStages: 4, K: 2, M: 2,
		DisableRemote: true, BufferSize: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	opt := eccheck.NewBuildOptions()
	opt.Scale = 16
	opt.Seed = 1
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		b.Fatal(err)
	}
	var bytesPerRound int64
	for _, sd := range dicts {
		bytesPerRound += int64(sd.TensorBytes())
	}
	ctx := context.Background()
	b.SetBytes(bytesPerRound)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Save(ctx, dicts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalRecovery measures the real distributed decode path
// after the worst recoverable failure (both data nodes).
func BenchmarkFunctionalRecovery(b *testing.B) {
	if testing.Short() {
		b.Skip("full-size distributed recovery; run without -short")
	}
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 2, TPDegree: 2, PPStages: 4, K: 2, M: 2,
		DisableRemote: true, BufferSize: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	opt := eccheck.NewBuildOptions()
	opt.Scale = 16
	opt.Seed = 2
	dicts, err := eccheck.BuildClusterStateDicts(eccheck.ModelZoo()[0], sys.Topology(), opt)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.Save(ctx, dicts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, node := range sys.DataNodes() {
			if err := sys.FailNode(node); err != nil {
				b.Fatal(err)
			}
			if err := sys.ReplaceNode(node); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, _, err := sys.Load(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
