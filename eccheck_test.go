package eccheck_test

import (
	"context"
	"testing"
	"time"

	"eccheck"
)

func smallSystem(t *testing.T) (*eccheck.System, []*eccheck.StateDict) {
	t.Helper()
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes:       4,
		GPUsPerNode: 2,
		TPDegree:    2,
		PPStages:    4,
		K:           2,
		M:           2,
		BufferSize:  64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sys.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	zoo := eccheck.ModelZoo()
	if len(zoo) != 9 {
		t.Fatalf("model zoo has %d configs", len(zoo))
	}
	opt := eccheck.NewBuildOptions()
	opt.Scale = 32
	opt.Seed = 42
	dicts, err := eccheck.BuildClusterStateDicts(zoo[0], sys.Topology(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return sys, dicts
}

func TestPublicAPISaveLoadRecoverCycle(t *testing.T) {
	sys, dicts := smallSystem(t)
	ctx := context.Background()

	rep, err := sys.Save(ctx, dicts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || sys.Version() != 1 {
		t.Errorf("version = %d/%d", rep.Version, sys.Version())
	}
	if sys.FaultTolerance() != 2 {
		t.Errorf("FaultTolerance = %d", sys.FaultTolerance())
	}
	if len(sys.DataNodes()) != 2 || len(sys.ParityNodes()) != 2 {
		t.Errorf("nodes: data %v parity %v", sys.DataNodes(), sys.ParityNodes())
	}

	// Kill two machines (the tolerance bound), replace, recover.
	victims := []int{sys.DataNodes()[0], sys.ParityNodes()[0]}
	for _, v := range victims {
		if err := sys.FailNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.AliveNodes()); got != 2 {
		t.Errorf("%d nodes alive", got)
	}
	for _, v := range victims {
		if err := sys.ReplaceNode(v); err != nil {
			t.Fatal(err)
		}
	}
	got, lrep, err := sys.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Workflow != "decode" {
		t.Errorf("workflow = %q", lrep.Workflow)
	}
	for rank := range dicts {
		if !dicts[rank].Equal(got[rank]) {
			t.Errorf("rank %d: recovered dict differs", rank)
		}
	}
	// Redundancy is restored on the replaced machines.
	for _, v := range victims {
		if sys.NodeMemoryBytes(v) == 0 {
			t.Errorf("node %d holds no chunk after recovery", v)
		}
	}
}

func TestPublicAPIStateDictConstruction(t *testing.T) {
	sd := eccheck.NewStateDict()
	sd.SetMeta("iteration", eccheck.IntValue(5))
	sd.SetMeta("lr", eccheck.FloatValue(1e-4))
	sd.SetMeta("run", eccheck.StringValue("exp-1"))
	sd.SetMeta("amp", eccheck.BoolValue(true))
	sd.SetMeta("rng", eccheck.BytesValue([]byte{1, 2}))
	ts, err := eccheck.NewTensor(eccheck.Float32, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.SetTensor("w", ts); err != nil {
		t.Fatal(err)
	}
	if sd.NumMeta() != 5 || sd.NumTensors() != 1 {
		t.Errorf("meta %d tensors %d", sd.NumMeta(), sd.NumTensors())
	}
	wrapped, err := eccheck.TensorFromBytes(eccheck.Float16, []int{2, 2}, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.NumBytes() != 8 {
		t.Errorf("NumBytes = %d", wrapped.NumBytes())
	}
}

func TestPublicAPICodec(t *testing.T) {
	codec, err := eccheck.NewCodec(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	size := codec.ChunkAlign(1000)
	data := make([][]byte, 3)
	parity := make([][]byte, 2)
	for i := range data {
		data[i] = make([]byte, size)
		for j := range data[i] {
			data[i][j] = byte(i*31 + j)
		}
	}
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := codec.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	chunks := append(append([][]byte{}, data...), parity...)
	orig0 := append([]byte(nil), chunks[0]...)
	chunks[0], chunks[3] = nil, nil
	if err := codec.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range orig0 {
		if chunks[0][i] != orig0[i] {
			t.Fatal("reconstructed chunk 0 differs")
		}
	}
}

func TestInitializeValidation(t *testing.T) {
	if _, err := eccheck.Initialize(eccheck.Config{Nodes: 4, GPUsPerNode: 1, TPDegree: 1, PPStages: 4, K: 1, M: 1}); err == nil {
		t.Error("k+m != nodes: want error")
	}
	if _, err := eccheck.Initialize(eccheck.Config{Nodes: 0}); err == nil {
		t.Error("zero nodes: want error")
	}
	if _, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 1, TPDegree: 1, PPStages: 4, K: 2, M: 2, Transport: TransportKindBad,
	}); err == nil {
		t.Error("bad transport: want error")
	}
	if _, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 1, TPDegree: 1, PPStages: 4, K: 2, M: 2, RestoreWorkers: -1,
	}); err == nil {
		t.Error("negative restore workers: want error")
	}
	if _, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 1, TPDegree: 1, PPStages: 4, K: 2, M: 2, LoadBudget: -time.Second,
	}); err == nil {
		t.Error("negative load budget: want error")
	}
}

// TransportKindBad is an out-of-range transport for validation tests.
const TransportKindBad = eccheck.TransportKind(99)

func TestRemoteDisabled(t *testing.T) {
	sys, err := eccheck.Initialize(eccheck.Config{
		Nodes: 4, GPUsPerNode: 1, TPDegree: 1, PPStages: 4, K: 2, M: 2,
		DisableRemote: true, BufferSize: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if _, err := sys.LoadFromRemote(context.Background(), 0); err == nil {
		t.Error("remote disabled: want error")
	}
}
